"""1995-style packed database encodings.

600 MB was a wall in 1995; the original databases were stored packed.
Two codecs, chosen per database by :func:`pack_values`:

* ``int8`` — one byte per value, for bounds up to 127;
* ``nibble`` — two values per byte for bounds up to 7 (values in
  [-7, 7] are biased by +7 into 4 bits), halving the archive again.

Round-trips are exact; :meth:`PackedDatabase.ratio` reports the
compression against the in-memory int16 arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PackedDatabase", "pack_values", "unpack_values"]

_NIBBLE_BIAS = 7


@dataclass(frozen=True)
class PackedDatabase:
    """One packed value array plus the codec needed to restore it."""

    codec: str  # "nibble" | "int8"
    count: int
    payload: np.ndarray  # uint8 buffer

    @property
    def nbytes(self) -> int:
        return int(self.payload.nbytes)

    def ratio(self) -> float:
        """Compression vs the int16 working representation."""
        return (2.0 * self.count) / self.nbytes if self.nbytes else 0.0


def pack_values(values: np.ndarray, bound: int | None = None) -> PackedDatabase:
    """Pack a value array with the tightest applicable codec."""
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("values must be one-dimensional")
    if bound is None:
        bound = int(np.abs(values).max()) if values.size else 0
    if values.size and int(np.abs(values).max()) > bound:
        raise ValueError("values exceed the stated bound")
    if bound <= _NIBBLE_BIAS:
        biased = (values.astype(np.int16) + _NIBBLE_BIAS).astype(np.uint8)
        if biased.shape[0] % 2:
            biased = np.concatenate([biased, np.zeros(1, dtype=np.uint8)])
        payload = (biased[0::2] << np.uint8(4)) | biased[1::2]
        return PackedDatabase(
            codec="nibble", count=int(values.shape[0]), payload=payload
        )
    if bound <= 127:
        return PackedDatabase(
            codec="int8",
            count=int(values.shape[0]),
            payload=values.astype(np.int8).view(np.uint8).copy(),
        )
    raise ValueError(f"bound {bound} too large for the 1995 codecs")


def unpack_values(packed: PackedDatabase) -> np.ndarray:
    """Exact inverse of :func:`pack_values` (returns int16)."""
    if packed.codec == "int8":
        return packed.payload.view(np.int8).astype(np.int16)
    if packed.codec == "nibble":
        high = (packed.payload >> np.uint8(4)).astype(np.int16)
        low = (packed.payload & np.uint8(0x0F)).astype(np.int16)
        out = np.empty(packed.payload.shape[0] * 2, dtype=np.int16)
        out[0::2] = high
        out[1::2] = low
        return out[: packed.count] - _NIBBLE_BIAS
    raise ValueError(f"unknown codec {packed.codec!r}")
