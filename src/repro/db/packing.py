"""Packed database encodings: 1995-style codecs plus a general bit codec.

600 MB was a wall in 1995; the original databases were stored packed.
Two fixed codecs, chosen per database by :func:`pack_values`:

* ``int8`` — one byte per value, for bounds up to 127;
* ``nibble`` — two values per byte for bounds up to 7 (values in
  [-7, 7] are biased by +7 into 4 bits), halving the archive again.

On top of those sits the *general* arbitrary-bit-width codec —
:func:`bit_width`, :func:`pack_bits`, :func:`unpack_bits` — which packs
N values of width ``k`` bits into ``ceil(N * k / 8)`` bytes with bulk
numpy shift/or operations (no per-value Python).  WDL needs 2 bits,
awari scores a handful; spending 16 per value is the per-shard memory
wall the serving stack's ``packed`` paged-store codec removes (see
``repro.serve.pagedstore``).

Round-trips are exact for every codec; :meth:`PackedDatabase.ratio`
reports the compression against the in-memory int16 arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PackedDatabase",
    "pack_values",
    "unpack_values",
    "bit_width",
    "packed_nbytes",
    "pack_bits",
    "unpack_bits",
]

_NIBBLE_BIAS = 7

#: Widest value the general codec packs (values are int16 on disk).
MAX_BITS = 16


# --------------------------------------------------------- general codec


def bit_width(lo: int, hi: int) -> int:
    """Minimal bits per value for the closed range ``[lo, hi]``.

    The codec stores ``value - lo`` unsigned, so the width is that of
    ``hi - lo``; a degenerate range (``lo == hi``) still spends one bit
    so counts and payload sizes stay well-defined.
    """
    lo, hi = int(lo), int(hi)
    if hi < lo:
        raise ValueError(f"empty value range [{lo}, {hi}]")
    span = hi - lo
    bits = max(int(span).bit_length(), 1)
    if bits > MAX_BITS:
        raise ValueError(
            f"range [{lo}, {hi}] needs {bits} bits; the codec packs at "
            f"most {MAX_BITS}"
        )
    return bits


def packed_nbytes(count: int, bits: int) -> int:
    """Bytes the general codec spends on ``count`` values of ``bits``."""
    if count < 0:
        raise ValueError("count must be >= 0")
    if not (1 <= bits <= MAX_BITS):
        raise ValueError(f"bits must be in [1, {MAX_BITS}], got {bits}")
    return (count * bits + 7) // 8


def pack_bits(values: np.ndarray, bits: int, offset: int = 0) -> np.ndarray:
    """Pack ``values`` into a ``ceil(N * bits / 8)``-byte uint8 stream.

    Each value is biased by ``-offset`` into an unsigned ``bits``-wide
    field and the fields are concatenated MSB-first — all with bulk
    numpy shifts, one bit-matrix, and one ``packbits``.  Exact inverse:
    :func:`unpack_bits`.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("values must be one-dimensional")
    if not (1 <= bits <= MAX_BITS):
        raise ValueError(f"bits must be in [1, {MAX_BITS}], got {bits}")
    if values.size == 0:
        return np.zeros(0, dtype=np.uint8)
    biased = values.astype(np.int64) - int(offset)
    if int(biased.min()) < 0 or int(biased.max()) >> bits:
        raise ValueError(
            f"values exceed the {bits}-bit field at offset {offset} "
            f"(range [{int(values.min())}, {int(values.max())}])"
        )
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    # (N, bits) bit matrix, MSB first, then one packbits over the ravel.
    bit_matrix = ((biased[:, None].astype(np.uint64) >> shifts) & 1).astype(
        np.uint8
    )
    return np.packbits(bit_matrix.ravel())


def unpack_bits(
    payload: np.ndarray, count: int, bits: int, offset: int = 0
) -> np.ndarray:
    """Exact inverse of :func:`pack_bits` (returns int16).

    ``count`` is validated against the payload length: a count the
    payload cannot hold (or one that leaves whole spare bytes) raises
    instead of silently mis-slicing.
    """
    payload = np.ascontiguousarray(payload, dtype=np.uint8)
    expected = packed_nbytes(count, bits)
    if payload.nbytes != expected:
        raise ValueError(
            f"payload holds {payload.nbytes} bytes but {count} values of "
            f"{bits} bits need exactly {expected}"
        )
    if count == 0:
        return np.zeros(0, dtype=np.int16)
    stream = np.unpackbits(payload, count=count * bits)
    weights = (
        np.left_shift(np.uint32(1), np.arange(bits - 1, -1, -1))
    ).astype(np.uint32)
    fields = stream.reshape(count, bits).astype(np.uint32) @ weights
    return (fields.astype(np.int64) + int(offset)).astype(np.int16)


# ----------------------------------------------------- 1995-style codecs


@dataclass(frozen=True)
class PackedDatabase:
    """One packed value array plus the codec needed to restore it."""

    codec: str  # "nibble" | "int8"
    count: int
    payload: np.ndarray  # uint8 buffer

    def __post_init__(self):
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")
        expected = self._expected_nbytes()
        if expected is not None and int(self.payload.nbytes) != expected:
            raise ValueError(
                f"codec {self.codec!r} with count {self.count} needs a "
                f"{expected}-byte payload, got {int(self.payload.nbytes)}"
            )

    def _expected_nbytes(self):
        """Exact payload size for the codec, ``None`` if codec-unknown
        (the unknown codec is reported at unpack time, not here)."""
        if self.codec == "nibble":
            return (self.count + 1) // 2
        if self.codec == "int8":
            return self.count
        return None

    @property
    def nbytes(self) -> int:
        return int(self.payload.nbytes)

    def ratio(self) -> float:
        """Compression vs the int16 working representation.

        An empty database compresses nothing: the ratio is defined as
        1.0 (parity), never 0.0 ("infinitely bad") — empty stores must
        not sink aggregate summaries.
        """
        if self.count == 0 or self.nbytes == 0:
            return 1.0
        return (2.0 * self.count) / self.nbytes


def pack_values(values: np.ndarray, bound: int | None = None) -> PackedDatabase:
    """Pack a value array with the tightest applicable codec."""
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("values must be one-dimensional")
    if bound is None:
        bound = int(np.abs(values).max()) if values.size else 0
    if values.size and int(np.abs(values).max()) > bound:
        raise ValueError("values exceed the stated bound")
    if bound <= _NIBBLE_BIAS:
        biased = (values.astype(np.int16) + _NIBBLE_BIAS).astype(np.uint8)
        if biased.shape[0] % 2:
            biased = np.concatenate([biased, np.zeros(1, dtype=np.uint8)])
        payload = (biased[0::2] << np.uint8(4)) | biased[1::2]
        return PackedDatabase(
            codec="nibble", count=int(values.shape[0]), payload=payload
        )
    if bound <= 127:
        return PackedDatabase(
            codec="int8",
            count=int(values.shape[0]),
            payload=values.astype(np.int8).view(np.uint8).copy(),
        )
    raise ValueError(f"bound {bound} too large for the 1995 codecs")


def unpack_values(packed: PackedDatabase) -> np.ndarray:
    """Exact inverse of :func:`pack_values` (returns int16).

    The count is re-validated against the payload here as well as in
    the constructor, so a ``PackedDatabase`` deserialized or mutated
    around the constructor still cannot silently mis-slice (an
    odd-length nibble padding used to decode a phantom −7).
    """
    if packed.codec == "int8":
        if packed.payload.nbytes != packed.count:
            raise ValueError(
                f"int8 payload holds {packed.payload.nbytes} values, "
                f"count says {packed.count}"
            )
        return packed.payload.view(np.int8).astype(np.int16)
    if packed.codec == "nibble":
        if packed.payload.nbytes != (packed.count + 1) // 2:
            raise ValueError(
                f"nibble payload holds {packed.payload.nbytes} bytes "
                f"({2 * packed.payload.nbytes} nibbles), count says "
                f"{packed.count}"
            )
        high = (packed.payload >> np.uint8(4)).astype(np.int16)
        low = (packed.payload & np.uint8(0x0F)).astype(np.int16)
        out = np.empty(packed.payload.shape[0] * 2, dtype=np.int16)
        out[0::2] = high
        out[1::2] = low
        return out[: packed.count] - _NIBBLE_BIAS
    raise ValueError(f"unknown codec {packed.codec!r}")
