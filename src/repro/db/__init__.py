"""Endgame database storage, statistics and querying."""

from .packing import PackedDatabase, pack_values, unpack_values
from .query import MoveEvaluation, best_moves, evaluate_moves, optimal_line
from .search import DatabaseProbingSearch, SearchResult, SearchStats
from .stats import DatabaseStats, database_stats, set_stats
from .store import DatabaseSet
from .successors import SuccessorRef, resolve_successors

__all__ = [
    "DatabaseSet",
    "SuccessorRef",
    "resolve_successors",
    "DatabaseStats",
    "database_stats",
    "set_stats",
    "MoveEvaluation",
    "best_moves",
    "evaluate_moves",
    "optimal_line",
    "PackedDatabase",
    "pack_values",
    "unpack_values",
    "DatabaseProbingSearch",
    "SearchResult",
    "SearchStats",
]
