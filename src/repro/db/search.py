"""Forward search backed by endgame databases.

This is what endgame databases are *for* in a game-playing program (the
paper's motivation): a forward alpha-beta search probes the database the
moment a capture drops the position into solved territory, turning a
bounded-depth heuristic search into an exact solver for positions well
above the database horizon.

The searcher is a full negamax with:

* **database probing** at every node whose stone count is solved;
* a **transposition table** with the usual EXACT/LOWER/UPPER bound flags;
* correct **repetition handling** for this game class: a position
  repeated on the current path scores 0 (the cycle convention), and —
  the classic graph-history-interaction pitfall — results that depended
  on such a back-edge are only cached when the back-edge target lies
  within the subtree (low-link tracking), never when they depend on
  ancestors above the cache point.

With a complete database set the search trivially agrees with lookup;
with *partial* databases it extends them exactly — both are asserted in
the test suite against full-database ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SearchResult", "SearchStats", "DatabaseProbingSearch"]

_INF = 10**6
_NO_DEP = 10**9  # low-link value meaning "depends on no ancestor"

_EXACT, _LOWER, _UPPER = 0, 1, 2


@dataclass
class SearchStats:
    """Search-effort counters for one solve call."""

    nodes: int = 0
    db_probes: int = 0
    cutoffs: int = 0
    depth_limit_hits: int = 0
    tt_hits: int = 0
    repetition_hits: int = 0


@dataclass
class SearchResult:
    """Outcome of one search: exact unless the depth limit interfered."""

    value: int
    exact: bool
    best_pit: int | None
    stats: SearchStats


class DatabaseProbingSearch:
    """Negamax alpha-beta over awari-style capture games with DB probing.

    Parameters
    ----------
    game:
        A capture game exposing ``engine`` (move application + indexer),
        e.g. :class:`~repro.games.awari_db.AwariCaptureGame`.
    dbs:
        Mapping / :class:`~repro.db.store.DatabaseSet` of solved
        databases, or any probe source implementing the
        :class:`~repro.serve.service.ProbeService` protocol (``probe`` +
        ``__contains__``) — e.g. a paged store behind a block cache, so
        the search never holds a full database in memory.  Any position
        whose stone count is present is resolved by lookup.
    max_depth:
        Ply budget for the non-database part of the tree.
    """

    def __init__(
        self,
        game,
        dbs,
        max_depth: int = 24,
        max_nodes: int = 200_000,
        persistent_tt: bool = True,
    ):
        self.game = game
        self.dbs = dbs
        probe = getattr(dbs, "probe", None)
        self._lookup = (
            probe if probe is not None else lambda n, idx: int(dbs[n][idx])
        )
        self.max_depth = max_depth
        #: Node budget per :meth:`solve`.  Large drawish regions form
        #: cycles whose values are path-dependent (the classic
        #: graph-history-interaction wall), where no transposition table
        #: helps and DFS degenerates — the very reason the paper computes
        #: such regions by retrograde analysis instead of forward search.
        #: When the budget runs out the result is reported inexact.
        self.max_nodes = max_nodes
        #: Keep the transposition table across :meth:`solve` calls —
        #: sound (entries are position-only facts) and a large win when
        #: solving many related positions.
        self.persistent_tt = persistent_tt
        self._tt: dict = {}
        self._on_path: dict = {}
        self._expansions: dict = {}
        self._hints: dict = {}  # board -> pit that was best last visit
        self._all_pits = np.arange(6, dtype=np.int64)

    # ------------------------------------------------------------------ api

    def solve(self, board: np.ndarray) -> SearchResult:
        """Search ``board`` (mover = pits 0-5) to an exact value if the
        databases and depth budget allow.

        Runs iterative deepening: shallow passes seed the move-ordering
        hints that make the deep pass's alpha-beta cutoffs effective.
        """
        board = np.asarray(board, dtype=np.int16).reshape(12)
        stats = SearchStats()
        if not self.persistent_tt:
            self._tt.clear()
            self._expansions.clear()
            self._hints.clear()
        value, exact = 0, False
        for depth in range(4, self.max_depth + 1, 4):
            self._on_path.clear()
            value, exact, _ = self._search(board, -_INF, _INF, depth, 0, stats)
            if exact or stats.nodes > self.max_nodes:
                break
        best_pit = self._best_root_move(board, value, stats)
        return SearchResult(value=value, exact=exact, best_pit=best_pit, stats=stats)

    # ------------------------------------------------------------- internals

    def _probe(self, board: np.ndarray, stats: SearchStats):
        n = int(board.sum())
        if n in self.dbs:
            stats.db_probes += 1
            idx = int(self.game.engine.indexer(n).rank(board[None, :])[0])
            return int(self._lookup(n, idx))
        return None

    def _search(self, board, alpha, beta, depth, pdepth, stats):
        """Returns ``(value, exact, low)`` where ``low`` is the smallest
        path depth of any repetition back-edge the value depends on."""
        stats.nodes += 1
        direct = self._probe(board, stats)
        if direct is not None:
            return direct, True, _NO_DEP

        key = board.tobytes()
        back = self._on_path.get(key)
        if back is not None:
            # Repetition: the mover can hold the cycle, worth 0 from here.
            stats.repetition_hits += 1
            return 0, True, back

        entry = self._tt.get(key)
        if entry is not None:
            flag, value = entry
            if (
                flag == _EXACT
                or (flag == _LOWER and value >= beta)
                or (flag == _UPPER and value <= alpha)
            ):
                stats.tt_hits += 1
                return value, True, _NO_DEP

        if depth <= 0 or stats.nodes > self.max_nodes:
            stats.depth_limit_hits += 1
            # Heuristic stand-in: current material difference, inexact.
            return int(board[:6].sum() - board[6:].sum()), False, None

        moves = self._expand(board)
        if not moves:
            value = int(board[:6].sum() - board[6:].sum())
            self._tt[key] = (_EXACT, value)
            return value, True, _NO_DEP

        self._on_path[key] = pdepth
        best = -_INF
        best_pit = None
        low = _NO_DEP
        exact = True
        a = alpha
        hint = self._hints.get(key)
        if hint is not None:
            moves = sorted(moves, key=lambda m: m[0] != hint)
        try:
            for pit, captured, successor in moves:
                v, child_exact, child_low = self._search(
                    successor, -beta, -a, depth - 1, pdepth + 1, stats
                )
                if not child_exact:
                    exact = False
                    child_low = _NO_DEP if child_low is None else child_low
                v = captured - v
                low = min(low, child_low)
                if v > best:
                    best = v
                    best_pit = pit
                a = max(a, v)
                if a >= beta:
                    stats.cutoffs += 1
                    break
        finally:
            del self._on_path[key]
        if best_pit is not None:
            self._hints[key] = best_pit

        # Cache only path-independent, exact results, with the proper
        # bound flag for the window actually searched.
        if exact and low >= pdepth:
            if best >= beta:
                flag = _LOWER
            elif best <= alpha:
                flag = _UPPER
            else:
                flag = _EXACT
            self._tt[key] = (flag, best)
            low = _NO_DEP
        return best, exact, low

    def _best_root_move(self, board, value, stats):
        """Re-evaluate the root's children to name an optimal move."""
        moves = self._expand(board)
        for pit, captured, successor in moves:
            v, exact, _ = self._search(
                successor,
                -_INF,
                _INF,
                self.max_depth - 1,
                1,
                stats,
            )
            if exact and captured - v == value:
                return pit
        return moves[0][0] if moves else None

    def _expand(self, board):
        """Legal moves ordered captures-first (better cutoffs and the
        fastest path into the databases).  One vectorized engine call for
        all six pits, memoized per position."""
        key = board.tobytes()
        cached = self._expansions.get(key)
        if cached is not None:
            return cached
        batch = np.broadcast_to(board, (6, 12))
        outcome = self.game.engine.apply_move(batch, self._all_pits)
        out = [
            (pit, int(outcome.captured[pit]), outcome.boards[pit].copy())
            for pit in range(6)
            if outcome.legal[pit]
        ]
        out.sort(key=lambda m: -m[1])
        self._expansions[key] = out
        return out
