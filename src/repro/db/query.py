"""Querying awari endgame databases: best moves and optimal play.

This is what the databases are *for*: given a position, report its exact
value and the move(s) achieving it.  :func:`optimal_line` replays a
database-perfect game, used both as an example application and as an
end-to-end certificate in the tests (the realized capture difference of
a replayed line must equal the stored value).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..games.awari_db import AwariCaptureGame
from .store import DatabaseSet

__all__ = ["MoveEvaluation", "evaluate_moves", "best_moves", "optimal_line"]


@dataclass
class MoveEvaluation:
    """One legal move and the exact value it achieves for the mover.

    ``successor_depth`` is the successor's distance (see
    :class:`~repro.db.store.DatabaseSet`), ``None`` when depths were not
    collected; capturing moves report 0 (the capture itself is progress).
    """

    pit: int
    captures: int
    value: int
    successor: np.ndarray
    successor_depth: int | None = None


def evaluate_moves(
    game: AwariCaptureGame, dbs: DatabaseSet, board: np.ndarray
) -> list[MoveEvaluation]:
    """Exact evaluation of every legal move from ``board``.

    Requires the databases for the board's stone count and everything a
    capture can reach.
    """
    board = np.asarray(board, dtype=np.int16).reshape(1, 12)
    n = int(board.sum())
    evals = []
    for pit in range(6):
        out = game.engine.apply_move(board, np.array([pit]))
        if not out.legal[0]:
            continue
        cap = int(out.captured[0])
        succ = out.boards[0]
        target = n - cap
        succ_idx = int(game.engine.indexer(target).rank(succ[None, :])[0])
        value = cap - int(dbs[target][succ_idx])
        if cap > 0:
            depth = 0
        elif hasattr(dbs, "depth_of"):
            depth = dbs.depth_of(target, succ_idx)
        else:
            depth = None
        evals.append(
            MoveEvaluation(
                pit=pit,
                captures=cap,
                value=value,
                successor=succ,
                successor_depth=depth,
            )
        )
    return evals


def best_moves(
    game: AwariCaptureGame, dbs: DatabaseSet, board: np.ndarray
) -> tuple[int, list[MoveEvaluation]]:
    """(position value, optimal moves) for ``board``.

    A terminal board returns its terminal value and an empty move list.
    """
    evals = evaluate_moves(game, dbs, board)
    board = np.asarray(board, dtype=np.int16)
    if not evals:
        mover = int(board[:6].sum())
        return 2 * mover - int(board.sum()), []
    value = max(e.value for e in evals)
    return value, [e for e in evals if e.value == value]


def optimal_line(
    game: AwariCaptureGame,
    dbs: DatabaseSet,
    board: np.ndarray,
    max_plies: int = 200,
) -> tuple[int, list[int]]:
    """Replay database-optimal play from ``board``.

    Both sides play a value-maximal move, preferring captures (which
    strictly reduce the stone count, guaranteeing progress whenever a
    capture is among the optimal moves).  Returns the realized capture
    difference from the first mover's perspective and the pit sequence.
    Lines that cycle (drawn positions) stop at ``max_plies`` with the
    captures collected so far.
    """
    board = np.asarray(board, dtype=np.int16).copy()
    diff = 0
    sign = 1
    pits: list[int] = []
    seen: set = set()
    for _ in range(max_plies):
        value, moves = best_moves(game, dbs, board)
        if not moves:
            diff += sign * value  # terminal rule: split remaining stones
            break
        # Prefer captures (guaranteed progress).  Among non-capturing
        # optimal moves, a collected depth is a *strict* progress measure
        # (see SequentialSolver.collect_depth); without one, fall back to
        # avoiding recently visited successors.
        have_depth = all(e.successor_depth is not None for e in moves)
        if have_depth:
            choice = min(
                moves, key=lambda e: (-e.captures, e.successor_depth)
            )
        else:
            choice = max(
                moves,
                key=lambda e: (
                    e.captures,
                    e.successor.tobytes() not in seen,
                ),
            )
        seen.add(board.tobytes())
        pits.append(choice.pit)
        diff += sign * choice.captures
        board = choice.successor.copy()
        sign = -sign
        if board.sum() == 0:
            break
    return diff, pits
