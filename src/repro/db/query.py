"""Querying awari endgame databases: best moves and optimal play.

This is what the databases are *for*: given a position, report its exact
value and the move(s) achieving it.  :func:`optimal_line` replays a
database-perfect game, used both as an example application and as an
end-to-end certificate in the tests (the realized capture difference of
a replayed line must equal the stored value).

``dbs`` throughout is any *value source*: a resident
:class:`~repro.db.store.DatabaseSet`, a
:class:`~repro.serve.service.ProbeService` over a paged store, or a
:class:`~repro.serve.client.ProbeClient` talking to a remote server —
anything with ``__contains__`` plus either array indexing or the
``probe_many`` protocol.  Sources with ``probe_many`` get all successor
lookups of one position as a single batch (one network round trip, one
cache-locality-sorted sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..games.awari_db import AwariCaptureGame
from .successors import resolve_successors

__all__ = ["MoveEvaluation", "evaluate_moves", "best_moves", "optimal_line"]


def _gather_values(dbs, positions: list) -> list[int]:
    """Values for ``[(db_id, index), ...]`` from any value source."""
    probe_many = getattr(dbs, "probe_many", None)
    if probe_many is not None:
        return [int(v) for v in probe_many(positions)]
    return [int(dbs[db_id][index]) for db_id, index in positions]


@dataclass
class MoveEvaluation:
    """One legal move and the exact value it achieves for the mover.

    ``successor_depth`` is the successor's distance (see
    :class:`~repro.db.store.DatabaseSet`), ``None`` when depths were not
    collected; capturing moves report 0 (the capture itself is progress).
    """

    pit: int
    captures: int
    value: int
    successor: np.ndarray
    successor_depth: int | None = None


def evaluate_moves(
    game: AwariCaptureGame, dbs, board: np.ndarray
) -> list[MoveEvaluation]:
    """Exact evaluation of every legal move from ``board``.

    Requires the databases for the board's stone count and everything a
    capture can reach.
    """
    refs = resolve_successors(game, board)
    values = _gather_values(dbs, [(r.db_id, r.index) for r in refs])
    evals = []
    for ref, succ_value in zip(refs, values):
        if ref.captures > 0:
            depth = 0
        elif hasattr(dbs, "depth_of"):
            depth = dbs.depth_of(ref.db_id, ref.index)
        else:
            depth = None
        evals.append(
            MoveEvaluation(
                pit=ref.pit,
                captures=ref.captures,
                value=ref.captures - succ_value,
                successor=ref.board,
                successor_depth=depth,
            )
        )
    return evals


def best_moves(
    game: AwariCaptureGame, dbs, board: np.ndarray
) -> tuple[int, list[MoveEvaluation]]:
    """(position value, optimal moves) for ``board``.

    A terminal board returns its terminal value and an empty move list.
    """
    evals = evaluate_moves(game, dbs, board)
    board = np.asarray(board, dtype=np.int16)
    if not evals:
        mover = int(board[:6].sum())
        return 2 * mover - int(board.sum()), []
    value = max(e.value for e in evals)
    return value, [e for e in evals if e.value == value]


def optimal_line(
    game: AwariCaptureGame,
    dbs,
    board: np.ndarray,
    max_plies: int = 200,
) -> tuple[int, list[int]]:
    """Replay database-optimal play from ``board``.

    Both sides play a value-maximal move, preferring captures (which
    strictly reduce the stone count, guaranteeing progress whenever a
    capture is among the optimal moves).  Returns the realized capture
    difference from the first mover's perspective and the pit sequence.
    Lines that cycle (drawn positions) stop at ``max_plies`` with the
    captures collected so far.
    """
    board = np.asarray(board, dtype=np.int16).copy()
    diff = 0
    sign = 1
    pits: list[int] = []
    seen: set = set()
    for _ in range(max_plies):
        value, moves = best_moves(game, dbs, board)
        if not moves:
            diff += sign * value  # terminal rule: split remaining stones
            break
        # Prefer captures (guaranteed progress).  Among non-capturing
        # optimal moves, a collected depth is a *strict* progress measure
        # (see SequentialSolver.collect_depth); without one, fall back to
        # avoiding recently visited successors.
        have_depth = all(e.successor_depth is not None for e in moves)
        if have_depth:
            choice = min(
                moves, key=lambda e: (-e.captures, e.successor_depth)
            )
        else:
            choice = max(
                moves,
                key=lambda e: (
                    e.captures,
                    e.successor.tobytes() not in seen,
                ),
            )
        seen.add(board.tobytes())
        pits.append(choice.pit)
        diff += sign * choice.captures
        board = choice.successor.copy()
        sign = -sign
        if board.sum() == 0:
            break
    return diff, pits
