"""Database statistics — the raw material of the paper's Table 1.

For each database: position count, win/draw/loss split (from the mover's
perspective) and the full value histogram.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .store import DatabaseSet

__all__ = ["DatabaseStats", "database_stats", "set_stats"]


@dataclass
class DatabaseStats:
    """Win/draw/loss summary and value histogram of one database."""

    db_id: object
    positions: int
    wins: int
    draws: int
    losses: int
    histogram: dict

    @property
    def win_fraction(self) -> float:
        return self.wins / self.positions if self.positions else 0.0

    @property
    def draw_fraction(self) -> float:
        return self.draws / self.positions if self.positions else 0.0

    def row(self) -> str:
        return (
            f"{self.db_id!s:>6} {self.positions:>12,} {self.wins:>12,} "
            f"{self.draws:>10,} {self.losses:>12,} "
            f"{100 * self.win_fraction:6.2f}% {100 * self.draw_fraction:6.2f}%"
        )


def database_stats(db_id, values: np.ndarray) -> DatabaseStats:
    """Summarize one value array."""
    uniq, counts = np.unique(values, return_counts=True)
    hist = {int(v): int(c) for v, c in zip(uniq, counts)}
    return DatabaseStats(
        db_id=db_id,
        positions=int(values.shape[0]),
        wins=int((values > 0).sum()),
        draws=int((values == 0).sum()),
        losses=int((values < 0).sum()),
        histogram=hist,
    )


def set_stats(dbs: DatabaseSet) -> list[DatabaseStats]:
    """Statistics for every database in the set, in id order."""
    return [database_stats(db_id, dbs[db_id]) for db_id in dbs.ids()]
