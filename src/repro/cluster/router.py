"""Scatter-gather routing of probes across a sharded serving cluster.

A :class:`ShardRouter` owns one reconnecting
:class:`~repro.serve.client.ProbeClient` per shard and speaks the same
probe protocol as :class:`~repro.serve.service.ProbeService` (``probe``
/ ``probe_many`` / ``best_moves`` / ``__contains__`` / ``depth_of``),
so ``repro.db.query`` and ``repro.db.search`` run over a whole cluster
exactly as they run over one server or an in-memory array.

Routing is owner-computes, like the solver itself: every global
position ``(db, index)`` has exactly one owning shard under the
partition recorded in the shard manifest, and the router sends each
probe only to its owner (``partition.owner_of``), translated to the
owner's dense local slot (``partition.to_local``).  A batch is split
into per-shard sub-batches, each sorted by storage locality (database,
then paged block of the local slot) so the shard's block cache is
touched sequentially, dispatched concurrently across shards, and merged
back in request order.

Failure handling: each shard has an ordered endpoint list — primary
first, replicas after (:class:`~repro.cluster.topology.ClusterTopology`).
Transport failures inside one endpoint are absorbed by the client's own
reconnect machinery; when that is exhausted
(:class:`~repro.serve.client.ProbeTransportError`), the router rotates
the shard to its next endpoint, counts ``cluster.failovers``, and
replays the sub-batch there — safe because every probe operation is an
idempotent pure lookup.  Application rejections (``ok: false``) are
re-raised unrotated: a replica holds the same data and would reject
identically.

One router instance is not safe for concurrent calls from multiple
threads (per-shard clients are plain blocking sockets); the concurrency
*inside* one ``probe_many`` call is safe because each shard's client is
driven by exactly one scatter thread.

``transport="binary"`` swaps the per-shard clients for pipelined
:class:`~repro.aserve.client.BinaryProbeClient` instances sharing **one**
:class:`~repro.aserve.client.EventLoopThread`: a scatter then dispatches
every shard's sub-batch as a concurrent future on that loop instead of
spawning a thread per shard, and failover falls back to the same
endpoint-rotation path on transport failure.
"""

from __future__ import annotations

import threading

import numpy as np

from ..obs import NULL_METRICS, names
from ..serve.client import ProbeClient, ProbeError, ProbeTransportError
from .manifest import ShardManifest
from .topology import ClusterTopology, ShardEndpoint

__all__ = ["ShardRouter"]


def _normalize_endpoints(endpoints) -> list:
    """Per-shard endpoint lists from a topology or raw address tuples."""
    if isinstance(endpoints, ClusterTopology):
        endpoints = endpoints.endpoints
    groups = []
    for group in endpoints:
        normalized = []
        for e in group:
            if isinstance(e, ShardEndpoint):
                normalized.append(e)
            else:
                host, port = e[0], e[1]
                normalized.append(ShardEndpoint(host=str(host), port=int(port)))
        if not normalized:
            raise ValueError("every shard needs at least one endpoint")
        groups.append(normalized)
    return groups


class ShardRouter:
    """Route probes to their owning shards; fail over to replicas.

    ``client_factory(host, port)`` defaults to a reconnecting
    :class:`~repro.serve.client.ProbeClient` for ``transport="json"``
    and a pipelined :class:`~repro.aserve.client.BinaryProbeClient` (all
    shards sharing one event-loop thread) for ``transport="binary"``;
    tests inject fakes here to pin routing decisions without sockets.  A
    custom factory used with the binary transport must produce clients
    with ``submit_probe_many``.
    """

    def __init__(self, manifest: ShardManifest, endpoints, metrics=None,
                 policy=None, timeout: float = 30.0, client_factory=None,
                 transport: str = "json"):
        if transport not in ("json", "binary"):
            raise ValueError(
                f"unknown transport {transport!r}; use 'json' or 'binary'"
            )
        self.transport = transport
        self.manifest = manifest
        self._endpoints = _normalize_endpoints(endpoints)
        if len(self._endpoints) != manifest.n_shards:
            raise ValueError(
                f"topology has {len(self._endpoints)} shards, manifest "
                f"expects {manifest.n_shards}"
            )
        self._metrics = NULL_METRICS if metrics is None else metrics
        self._policy = policy
        self._timeout = timeout
        self._loop_thread = None
        if client_factory is None:
            client_factory = (self._binary_factory if transport == "binary"
                              else self._default_factory)
        self._factory = client_factory
        self._active = [0] * manifest.n_shards
        self._clients: list = [None] * manifest.n_shards
        self._game = None
        self._metrics.set_gauge(names.CLUSTER_SHARDS, manifest.n_shards)
        self._metrics.set_gauge(
            names.CLUSTER_ENDPOINTS,
            sum(len(group) for group in self._endpoints),
        )

    @classmethod
    def from_topology(cls, topology, manifest=None, **kwargs) -> "ShardRouter":
        """Build a router from a topology file/object; the manifest is
        loaded from the topology's recorded cluster directory unless
        passed explicitly."""
        if not isinstance(topology, ClusterTopology):
            topology = ClusterTopology.load(topology)
        if manifest is None:
            manifest = ShardManifest.load(topology.cluster_dir)
        return cls(manifest, topology, **kwargs)

    def _default_factory(self, host: str, port: int):
        return ProbeClient(
            host, port, timeout=self._timeout,
            policy=self._policy, metrics=self._metrics,
        )

    def _binary_factory(self, host: str, port: int):
        """Pipelined binary client; every shard shares one event-loop
        thread, so the router's fan-out needs no thread per shard."""
        from ..aserve.client import BinaryProbeClient, EventLoopThread

        if self._loop_thread is None:
            self._loop_thread = EventLoopThread(name="shard-router-loop")
        return BinaryProbeClient(
            host, port, timeout=self._timeout, policy=self._policy,
            metrics=self._metrics, loop_thread=self._loop_thread,
        )

    # ------------------------------------------------------------ endpoints

    @property
    def n_shards(self) -> int:
        """Shard count of the routed cluster."""
        return self.manifest.n_shards

    def active_endpoint(self, shard: int) -> ShardEndpoint:
        """The endpoint currently serving one shard."""
        return self._endpoints[shard][self._active[shard]]

    def _client(self, shard: int):
        if self._clients[shard] is None:
            endpoint = self.active_endpoint(shard)
            self._clients[shard] = self._factory(endpoint.host, endpoint.port)
        return self._clients[shard]

    def _rotate(self, shard: int) -> None:
        """Advance one shard to its next endpoint (wrapping), dropping
        the dead client."""
        client = self._clients[shard]
        self._clients[shard] = None
        if client is not None:
            client.close()
        self._active[shard] = (
            self._active[shard] + 1
        ) % len(self._endpoints[shard])
        self._metrics.inc(names.CLUSTER_FAILOVERS)

    def _on_shard(self, shard: int, op):
        """Run ``op(client)`` against a shard, rotating through its
        endpoint list on transport failure.  Each endpoint (including
        the one we started from, after wrapping) is tried at most once
        per call."""
        attempts = len(self._endpoints[shard])
        last: ProbeTransportError | None = None
        for attempt in range(attempts):
            try:
                return op(self._client(shard))
            except ProbeTransportError as exc:
                last = exc
                self._metrics.inc(names.CLUSTER_SHARD_ERRORS)
                if attempt < attempts - 1:
                    self._rotate(shard)
        raise ProbeError(
            f"shard {shard}: all {attempts} endpoints failed "
            f"(last: {last})"
        ) from last

    # ------------------------------------------------------------- metadata

    @property
    def game_name(self) -> str:
        """Game of the routed cluster (from the manifest)."""
        return self.manifest.game

    @property
    def rules(self) -> str:
        """Rule string of the routed cluster (from the manifest)."""
        return self.manifest.rules

    def ids(self) -> list:
        """Database ids of the routed cluster."""
        return self.manifest.ids()

    def __contains__(self, db_id) -> bool:
        return db_id in self.manifest

    def positions(self, db_id) -> int:
        """Global position count of one database."""
        return self.manifest.positions(db_id)

    def stats(self) -> dict:
        """Topology plus the active endpoint's stats per shard."""
        per_shard = []
        for shard in range(self.n_shards):
            endpoint = self.active_endpoint(shard)
            stats = self._on_shard(shard, lambda c: c.stats())
            per_shard.append(
                {"endpoint": f"{endpoint.host}:{endpoint.port}", **stats}
            )
        return {
            "shards": self.n_shards,
            "endpoints": sum(len(g) for g in self._endpoints),
            "per_shard": per_shard,
        }

    # ---------------------------------------------------------------- probes

    def _route(self, db_id, index: int) -> tuple:
        """(owning shard, local slot) of one global position."""
        n = self.manifest.positions(db_id)
        index = int(index)
        if not (0 <= index < n):
            raise IndexError(
                f"index {index} out of range for db {db_id!r} ({n} positions)"
            )
        part = self.manifest.partition_for(db_id)
        return int(part.owner_of(index)), int(part.to_local(index))

    def probe(self, db_id, index: int) -> int:
        """Exact value of global position ``index`` of ``db_id``."""
        self._metrics.inc(names.CLUSTER_PROBES)
        shard, local = self._route(db_id, index)
        return int(
            self._on_shard(shard, lambda c: c.probe(db_id, local))
        )

    def probe_many(self, positions) -> np.ndarray:
        """Values for ``[(db_id, index), ...]`` in request order.

        Scatter: probes are grouped by owning shard, each group sorted
        by the shard's storage locality, and the groups are dispatched
        concurrently (one thread per shard when more than one shard is
        involved).  Gather: each shard's answers land in the output at
        their original request slots.
        """
        positions = list(positions)
        self._metrics.inc(names.CLUSTER_BATCHES)
        self._metrics.inc(names.CLUSTER_PROBES, len(positions))
        out = np.empty(len(positions), dtype=np.int16)
        if not positions:
            return out
        block = self.manifest.block_positions
        by_shard: dict = {}
        for slot, (db_id, index) in enumerate(positions):
            shard, local = self._route(db_id, index)
            by_shard.setdefault(shard, []).append((slot, db_id, local))
        for entries in by_shard.values():
            entries.sort(key=lambda e: (str(e[1]), e[2] // block))

        def fetch(shard, entries):
            pairs = [(db_id, local) for _, db_id, local in entries]
            self._metrics.inc(names.CLUSTER_FANOUTS)
            values = self._on_shard(shard, lambda c: c.probe_many(pairs))
            slots = np.fromiter(
                (slot for slot, _, _ in entries), dtype=np.int64,
                count=len(entries),
            )
            out[slots] = values

        if len(by_shard) == 1:
            ((shard, entries),) = by_shard.items()
            fetch(shard, entries)
            return out
        if self.transport == "binary":
            self._scatter_async(by_shard, out)
            return out
        failures: list = []

        def worker(shard, entries):
            try:
                fetch(shard, entries)
            except Exception as exc:  # noqa: BLE001 — gathered and
                # re-raised on the caller's thread below; a scatter
                # thread must never die silently.
                failures.append(exc)

        threads = [
            threading.Thread(
                target=worker, args=(shard, entries),
                name=f"shard-router-{shard}", daemon=True,
            )
            for shard, entries in by_shard.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        return out

    def _scatter_async(self, by_shard: dict, out: np.ndarray) -> None:
        """Binary-transport scatter: every shard's sub-batch goes out as
        a concurrent future on the shared event loop (no scatter
        threads).  A shard whose future fails in transport is replayed
        through :meth:`_on_shard`, which reconnects and then rotates
        through the replica list — same failover semantics as the
        threaded path."""
        futures: dict = {}
        pairs_of = {
            shard: [(db_id, local) for _, db_id, local in entries]
            for shard, entries in by_shard.items()
        }
        for shard, pairs in pairs_of.items():
            self._metrics.inc(names.CLUSTER_FANOUTS)
            try:
                futures[shard] = self._client(shard).submit_probe_many(pairs)
            except ProbeTransportError:
                self._metrics.inc(names.CLUSTER_SHARD_ERRORS)
                futures[shard] = None  # replayed blocking, below
        for shard, entries in by_shard.items():
            pairs, future = pairs_of[shard], futures[shard]
            if future is None:
                values = self._on_shard(
                    shard, lambda c, p=pairs: c.probe_many(p)
                )
            else:
                try:
                    values = future.result()
                except ProbeTransportError:
                    self._metrics.inc(names.CLUSTER_SHARD_ERRORS)
                    values = self._on_shard(
                        shard, lambda c, p=pairs: c.probe_many(p)
                    )
            slots = np.fromiter(
                (slot for slot, _, _ in entries), dtype=np.int64,
                count=len(entries),
            )
            out[slots] = values

    def depth_of(self, db_id, index: int):
        """Distances are not served over the wire; always ``None`` —
        same contract as :class:`~repro.serve.client.ProbeClient`."""
        return None

    # ------------------------------------------------------------ best move

    @property
    def game(self):
        """The capture game, reconstructed from manifest metadata."""
        if self._game is None:
            from ..games.registry import capture_game_for

            self._game = capture_game_for(self)
        return self._game

    def evaluate_moves(self, board: np.ndarray):
        """Exact evaluation of every legal move (probes are batched and
        scatter-gathered like any other batch)."""
        from ..db.query import evaluate_moves

        self._metrics.inc(names.CLUSTER_BEST_MOVE_QUERIES)
        return evaluate_moves(self.game, self, board)

    def best_moves(self, board: np.ndarray):
        """(position value, optimal moves) over the cluster — the same
        logic as the in-memory path, probing through the router."""
        from ..db.query import best_moves

        self._metrics.inc(names.CLUSTER_BEST_MOVE_QUERIES)
        return best_moves(self.game, self, board)

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Close every shard client (and the shared binary event loop);
        safe to call repeatedly."""
        for shard, client in enumerate(self._clients):
            if client is not None:
                client.close()
                self._clients[shard] = None
        if self._loop_thread is not None:
            self._loop_thread.close()
            self._loop_thread = None

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
