"""Scatter-gather routing of probes across a sharded serving cluster.

A :class:`ShardRouter` owns a pool of reconnecting
:class:`~repro.serve.client.ProbeClient` instances (one per endpoint it
has talked to) and speaks the same probe protocol as
:class:`~repro.serve.service.ProbeService` (``probe`` / ``probe_many``
/ ``best_moves`` / ``__contains__`` / ``depth_of``), so
``repro.db.query`` and ``repro.db.search`` run over a whole cluster
exactly as they run over one server or an in-memory array.

Routing is owner-computes, like the solver itself: every global
position ``(db, index)`` has exactly one owning shard under the
partition recorded in the shard manifest, and the router sends each
probe only to its owner (``partition.owner_of``), translated to the
owner's dense local slot (``partition.to_local``).  A batch is split
into per-shard sub-batches, each sorted by storage locality (database,
then paged block of the local slot) so the shard's block cache is
touched sequentially, dispatched concurrently across shards, and merged
back in request order.

Failure handling is health-aware (:mod:`repro.cluster.health`): every
endpoint carries a circuit breaker.  Transport failures inside one
endpoint are absorbed by the client's own reconnect machinery; when
that is exhausted (:class:`~repro.serve.client.ProbeTransportError`),
the router records a breaker failure, counts ``cluster.failovers``, and
replays the sub-batch on the next-healthiest endpoint — safe because
every probe operation is an idempotent pure lookup.  A tripped breaker
demotes its endpoint to the back of the candidate order rather than
banishing it, and after the reset window the next call probes it back:
a killed-then-restarted primary is *reinstated*, not remembered as dead
forever.  Application rejections (``ok: false``) are re-raised without
failover: a replica holds the same data and would reject identically.
An overload shed (:class:`~repro.serve.client.ProbeOverloadedError`) is
in between — the router fails over immediately but records *no*
breaker failure, because a load-shedding server is alive and protecting
itself.

Calls can carry a ``deadline`` (seconds): each failover attempt's
socket timeout is capped to the remaining budget and the call fails
with a loud ProbeError (counted on ``cluster.deadline_exceeded``) when
the budget runs out, instead of letting retries stack timeouts.
``hedge_after_ms`` additionally arms hedged reads on the batched path:
a sub-batch whose primary has not answered within the hedge delay is
mirrored to the next-healthiest replica (counted on ``cluster.hedges``)
and the first success wins (``cluster.hedge_wins``) — idempotent
lookups make the duplicate harmless.

One router instance is not safe for concurrent calls from multiple
threads; the concurrency *inside* one ``probe_many`` call is safe
because each in-flight attempt checks its client out of the pool and
returns it only when done.

``transport="binary"`` swaps the per-endpoint clients for pipelined
:class:`~repro.aserve.client.BinaryProbeClient` instances sharing **one**
:class:`~repro.aserve.client.EventLoopThread`: a scatter then dispatches
every shard's sub-batch as a concurrent future on that loop instead of
spawning a thread per shard, and failover falls back to the same
breaker-driven path on transport failure or overload.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..obs import NULL_METRICS, names
from ..serve.client import (
    ProbeClient,
    ProbeError,
    ProbeOverloadedError,
    ProbeTransportError,
)
from .health import EndpointHealth
from .manifest import ShardManifest
from .topology import ClusterTopology, ShardEndpoint

__all__ = ["ShardRouter"]

#: Default seconds a tripped endpoint breaker stays open before the
#: router probes it back with real traffic.
DEFAULT_BREAKER_RESET_SECONDS = 5.0


def _normalize_endpoints(endpoints) -> list:
    """Per-shard endpoint lists from a topology or raw address tuples."""
    if isinstance(endpoints, ClusterTopology):
        endpoints = endpoints.endpoints
    groups = []
    for group in endpoints:
        normalized = []
        for e in group:
            if isinstance(e, ShardEndpoint):
                normalized.append(e)
            else:
                host, port = e[0], e[1]
                normalized.append(ShardEndpoint(host=str(host), port=int(port)))
        if not normalized:
            raise ValueError("every shard needs at least one endpoint")
        groups.append(normalized)
    return groups


class ShardRouter:
    """Route probes to their owning shards; fail over on endpoint health.

    ``client_factory(host, port)`` defaults to a reconnecting
    :class:`~repro.serve.client.ProbeClient` for ``transport="json"``
    and a pipelined :class:`~repro.aserve.client.BinaryProbeClient` (all
    shards sharing one event-loop thread) for ``transport="binary"``;
    tests inject fakes here to pin routing decisions without sockets.  A
    custom factory used with the binary transport must produce clients
    with ``submit_probe_many``.

    Health knobs:

    ``breaker_threshold``
        Consecutive transport failures that trip an endpoint's circuit
        breaker open (default 1 — one surfaced failure is already an
        exhausted reconnect policy).
    ``breaker_reset_seconds``
        How long a tripped endpoint is demoted before the router probes
        it back with real traffic and, on success, reinstates it.
    ``deadline``
        Per-call wall-clock budget in seconds, shared across failover
        attempts (each attempt's socket timeout is capped to what is
        left).  ``None`` disables it.
    ``hedge_after_ms``
        Hedged reads on the batched path: mirror a sub-batch to the next
        replica when the primary is slower than this.  ``None`` (the
        default) disables hedging; clients without a second endpoint are
        never hedged.
    ``clock``
        Monotonic-seconds source, injectable so breaker and deadline
        tests advance time without sleeping.
    """

    def __init__(self, manifest: ShardManifest, endpoints, metrics=None,
                 policy=None, timeout: float = 30.0, client_factory=None,
                 transport: str = "json", breaker_threshold: int = 1,
                 breaker_reset_seconds: float = DEFAULT_BREAKER_RESET_SECONDS,
                 deadline: float | None = None,
                 hedge_after_ms: float | None = None,
                 clock=time.monotonic):
        if transport not in ("json", "binary"):
            raise ValueError(
                f"unknown transport {transport!r}; use 'json' or 'binary'"
            )
        if deadline is not None and float(deadline) <= 0:
            raise ValueError("deadline must be positive")
        if hedge_after_ms is not None and float(hedge_after_ms) < 0:
            raise ValueError("hedge_after_ms must be >= 0")
        self.transport = transport
        self.manifest = manifest
        self._endpoints = _normalize_endpoints(endpoints)
        if len(self._endpoints) != manifest.n_shards:
            raise ValueError(
                f"topology has {len(self._endpoints)} shards, manifest "
                f"expects {manifest.n_shards}"
            )
        self._metrics = NULL_METRICS if metrics is None else metrics
        self._policy = policy
        self._timeout = timeout
        self._deadline = None if deadline is None else float(deadline)
        self._hedge_after_ms = (
            None if hedge_after_ms is None else float(hedge_after_ms)
        )
        self._clock = clock
        self._loop_thread = None
        if client_factory is None:
            client_factory = (self._binary_factory if transport == "binary"
                              else self._default_factory)
        self._factory = client_factory
        self._health = EndpointHealth(
            [len(group) for group in self._endpoints],
            threshold=breaker_threshold,
            reset_seconds=breaker_reset_seconds,
            clock=clock, metrics=self._metrics,
        )
        # Per-endpoint idle-client pool: an attempt checks its client
        # out, so a slow hedged request can never share a socket with
        # the next batch.  {shard: {endpoint_index: client}}
        self._clients: list = [{} for _ in range(manifest.n_shards)]
        self._client_lock = threading.Lock()
        self._game = None
        self._metrics.set_gauge(names.CLUSTER_SHARDS, manifest.n_shards)
        self._metrics.set_gauge(
            names.CLUSTER_ENDPOINTS,
            sum(len(group) for group in self._endpoints),
        )

    @classmethod
    def from_topology(cls, topology, manifest=None, **kwargs) -> "ShardRouter":
        """Build a router from a topology file/object; the manifest is
        loaded from the topology's recorded cluster directory unless
        passed explicitly."""
        if not isinstance(topology, ClusterTopology):
            topology = ClusterTopology.load(topology)
        if manifest is None:
            manifest = ShardManifest.load(topology.cluster_dir)
        return cls(manifest, topology, **kwargs)

    def _default_factory(self, host: str, port: int):
        return ProbeClient(
            host, port, timeout=self._timeout,
            policy=self._policy, metrics=self._metrics,
        )

    def _binary_factory(self, host: str, port: int):
        """Pipelined binary client; every shard shares one event-loop
        thread, so the router's fan-out needs no thread per shard."""
        from ..aserve.client import BinaryProbeClient, EventLoopThread

        with self._client_lock:
            if self._loop_thread is None:
                self._loop_thread = EventLoopThread(name="shard-router-loop")
            loop_thread = self._loop_thread
        return BinaryProbeClient(
            host, port, timeout=self._timeout, policy=self._policy,
            metrics=self._metrics, loop_thread=loop_thread,
        )

    # ------------------------------------------------------------ endpoints

    @property
    def n_shards(self) -> int:
        """Shard count of the routed cluster."""
        return self.manifest.n_shards

    def active_endpoint(self, shard: int) -> ShardEndpoint:
        """The endpoint the next request to this shard will try first
        (the healthiest candidate under the breaker ordering)."""
        return self._endpoints[shard][self._health.candidates(shard)[0]]

    def health_snapshot(self) -> list:
        """Circuit-breaker states, shaped like the topology:
        ``[[state per endpoint] per shard]``."""
        return self._health.snapshot()

    def _take_client(self, shard: int, endpoint: int):
        """Check the endpoint's idle client out of the pool, building a
        fresh one when none is parked there (construction may raise
        :class:`ProbeTransportError` — the caller classifies it)."""
        with self._client_lock:
            client = self._clients[shard].pop(endpoint, None)
        if client is None:
            address = self._endpoints[shard][endpoint]
            client = self._factory(address.host, address.port)
        return client

    def _return_client(self, shard: int, endpoint: int, client) -> None:
        """Park a healthy client back in the pool.  If a newer client
        already occupies the slot (this one was slow and got replaced),
        close the returner instead of stacking connections."""
        with self._client_lock:
            occupied = endpoint in self._clients[shard]
            if not occupied:
                self._clients[shard][endpoint] = client
        if occupied:
            client.close()

    # ----------------------------------------------------------- attempts

    def _time_left(self, shard: int, deadline_at, last=None):
        """Remaining per-call budget in seconds (None without a
        deadline); raises a loud ProbeError once the budget is spent."""
        if deadline_at is None:
            return None
        remaining = deadline_at - self._clock()
        if remaining <= 0:
            self._metrics.inc(names.CLUSTER_DEADLINE_EXCEEDED)
            raise ProbeError(
                f"shard {shard}: deadline of {self._deadline}s exceeded "
                f"(last: {last})"
            ) from (last if isinstance(last, BaseException) else None)
        return remaining

    def _attempt_once(self, shard: int, endpoint: int, op, deadline_at):
        """Run ``op(client)`` against one endpoint with full breaker and
        pool bookkeeping; re-raises the classified failure."""
        remaining = self._time_left(shard, deadline_at)
        breaker = self._health.breaker(shard, endpoint)
        try:
            client = self._take_client(shard, endpoint)
        except ProbeTransportError:
            self._metrics.inc(names.CLUSTER_SHARD_ERRORS)
            breaker.record_failure()
            raise
        try:
            if remaining is not None:
                client.set_timeout(min(self._timeout, remaining))
            result = op(client)
        except ProbeOverloadedError:
            # The endpoint is alive and shedding load: hand the client
            # back, leave the breaker alone, let the caller fail over.
            self._metrics.inc(names.CLUSTER_OVERLOADS)
            self._return_client(shard, endpoint, client)
            raise
        except ProbeTransportError:
            self._metrics.inc(names.CLUSTER_SHARD_ERRORS)
            breaker.record_failure()
            client.close()
            raise
        except ProbeError:
            # Application rejection: the endpoint answered, so it is
            # healthy — the *request* is what failed.
            breaker.record_success()
            self._return_client(shard, endpoint, client)
            raise
        breaker.record_success()
        self._return_client(shard, endpoint, client)
        return result

    def _sequential(self, shard: int, op, candidates, deadline_at,
                    already: int = 0, last=None):
        """Try ``op`` on each candidate endpoint in order.  ``already``
        counts endpoints a caller burned before handing over (hedged or
        scatter first attempts), so the exhaustion message still names
        the full endpoint count."""
        total = already + len(candidates)
        for i, endpoint in enumerate(candidates):
            try:
                return self._attempt_once(shard, endpoint, op, deadline_at)
            except (ProbeOverloadedError, ProbeTransportError) as exc:
                last = exc
            # A plain ProbeError (application rejection, deadline)
            # propagates: no replica would answer differently.
            if i < len(candidates) - 1:
                self._metrics.inc(names.CLUSTER_FAILOVERS)
        raise ProbeError(
            f"shard {shard}: all {total} endpoints failed "
            f"(last: {last})"
        ) from last

    def _on_shard(self, shard: int, op):
        """Run ``op(client)`` against a shard, failing over through the
        breaker-ordered endpoint list.  Each endpoint is tried at most
        once per call."""
        deadline_at = (None if self._deadline is None
                       else self._clock() + self._deadline)
        return self._sequential(
            shard, op, self._health.candidates(shard), deadline_at
        )

    def _failover_rest(self, shard: int, op, failed_endpoint: int,
                       deadline_at, last):
        """After one endpoint already failed (scatter or hedge), replay
        on every *other* candidate in health order."""
        rest = [
            e for e in self._health.candidates(shard)
            if e != failed_endpoint
        ]
        if rest:
            self._metrics.inc(names.CLUSTER_FAILOVERS)
        return self._sequential(
            shard, op, rest, deadline_at, already=1, last=last
        )

    # ------------------------------------------------------------- metadata

    @property
    def game_name(self) -> str:
        """Game of the routed cluster (from the manifest)."""
        return self.manifest.game

    @property
    def rules(self) -> str:
        """Rule string of the routed cluster (from the manifest)."""
        return self.manifest.rules

    def ids(self) -> list:
        """Database ids of the routed cluster."""
        return self.manifest.ids()

    def __contains__(self, db_id) -> bool:
        return db_id in self.manifest

    def positions(self, db_id) -> int:
        """Global position count of one database."""
        return self.manifest.positions(db_id)

    def stats(self) -> dict:
        """Topology plus the healthiest endpoint's stats per shard."""
        per_shard = []
        for shard in range(self.n_shards):
            endpoint = self.active_endpoint(shard)
            stats = self._on_shard(shard, lambda c: c.stats())
            per_shard.append(
                {"endpoint": f"{endpoint.host}:{endpoint.port}", **stats}
            )
        return {
            "shards": self.n_shards,
            "endpoints": sum(len(g) for g in self._endpoints),
            "per_shard": per_shard,
        }

    # ---------------------------------------------------------------- probes

    def _route(self, db_id, index: int) -> tuple:
        """(owning shard, local slot) of one global position."""
        n = self.manifest.positions(db_id)
        index = int(index)
        if not (0 <= index < n):
            raise IndexError(
                f"index {index} out of range for db {db_id!r} ({n} positions)"
            )
        part = self.manifest.partition_for(db_id)
        return int(part.owner_of(index)), int(part.to_local(index))

    def probe(self, db_id, index: int) -> int:
        """Exact value of global position ``index`` of ``db_id``."""
        self._metrics.inc(names.CLUSTER_PROBES)
        shard, local = self._route(db_id, index)
        return int(
            self._on_shard(shard, lambda c: c.probe(db_id, local))
        )

    def _fetch_values(self, shard: int, pairs):
        """One shard's sub-batch, hedged when configured."""
        if self._hedge_after_ms is None:
            return self._on_shard(shard, lambda c: c.probe_many(pairs))
        return self._hedged_fetch(shard, pairs)

    def _hedged_fetch(self, shard: int, pairs):
        """Batched fetch with a hedged backup: when the primary has not
        answered within ``hedge_after_ms``, mirror the sub-batch to the
        next-healthiest endpoint and take whichever answers first.  A
        *fast* primary failure skips the hedge entirely and follows the
        ordinary sequential failover path."""
        deadline_at = (None if self._deadline is None
                       else self._clock() + self._deadline)
        candidates = self._health.candidates(shard)
        op = lambda c: c.probe_many(pairs)  # noqa: E731 — shared by threads
        if len(candidates) < 2:
            return self._sequential(shard, op, candidates, deadline_at)
        primary, backup, rest = candidates[0], candidates[1], candidates[2:]
        cond = threading.Condition()
        state: dict = {"winner": None, "values": None, "errors": {}}

        def attempt(endpoint: int) -> None:
            try:
                values = self._attempt_once(shard, endpoint, op, deadline_at)
            except ProbeError as exc:
                with cond:
                    state["errors"][endpoint] = exc
                    cond.notify_all()
                return
            with cond:
                if state["winner"] is None:
                    state["winner"] = endpoint
                    state["values"] = values
                cond.notify_all()

        threading.Thread(
            target=attempt, args=(primary,),
            name=f"shard-router-{shard}-primary", daemon=True,
        ).start()
        with cond:
            cond.wait_for(
                lambda: state["winner"] is not None
                or primary in state["errors"],
                timeout=self._hedge_after_ms / 1000.0,
            )
            winner = state["winner"]
            primary_error = state["errors"].get(primary)
        if winner is not None:
            return state["values"]
        if primary_error is not None:
            # Fast failure, no hedge: ordinary sequential failover.
            if not isinstance(primary_error,
                              (ProbeTransportError, ProbeOverloadedError)):
                raise primary_error
            self._metrics.inc(names.CLUSTER_FAILOVERS)
            return self._sequential(
                shard, op, candidates[1:], deadline_at,
                already=1, last=primary_error,
            )
        # Primary is merely slow: fire the hedge and race them.
        self._metrics.inc(names.CLUSTER_HEDGES)
        threading.Thread(
            target=attempt, args=(backup,),
            name=f"shard-router-{shard}-hedge", daemon=True,
        ).start()
        with cond:
            resolved = cond.wait_for(
                lambda: state["winner"] is not None
                or len(state["errors"]) >= 2,
                timeout=self._time_left(shard, deadline_at),
            )
            winner = state["winner"]
            errors = dict(state["errors"])
        if not resolved:
            # Both attempts still hanging past the deadline; their
            # capped socket timeouts will reap them in the background.
            self._time_left(shard, deadline_at,
                            last="hedged attempts still in flight")
        if winner is not None:
            if winner == backup:
                self._metrics.inc(names.CLUSTER_HEDGE_WINS)
            return state["values"]
        for exc in (errors.get(primary), errors.get(backup)):
            if not isinstance(exc,
                              (ProbeTransportError, ProbeOverloadedError)):
                raise exc
        self._metrics.inc(names.CLUSTER_FAILOVERS)  # primary -> backup
        if rest:
            self._metrics.inc(names.CLUSTER_FAILOVERS)  # backup -> rest
        return self._sequential(
            shard, op, rest, deadline_at, already=2,
            last=errors.get(backup) or errors.get(primary),
        )

    def probe_many(self, positions) -> np.ndarray:
        """Values for ``[(db_id, index), ...]`` in request order.

        Scatter: probes are grouped by owning shard, each group sorted
        by the shard's storage locality, and the groups are dispatched
        concurrently (one thread per shard when more than one shard is
        involved).  Gather: each shard's answers land in the output at
        their original request slots.
        """
        positions = list(positions)
        self._metrics.inc(names.CLUSTER_BATCHES)
        self._metrics.inc(names.CLUSTER_PROBES, len(positions))
        out = np.empty(len(positions), dtype=np.int16)
        if not positions:
            return out
        block = self.manifest.block_positions
        by_shard: dict = {}
        for slot, (db_id, index) in enumerate(positions):
            shard, local = self._route(db_id, index)
            by_shard.setdefault(shard, []).append((slot, db_id, local))
        for entries in by_shard.values():
            entries.sort(key=lambda e: (str(e[1]), e[2] // block))

        def fetch(shard, entries):
            pairs = [(db_id, local) for _, db_id, local in entries]
            self._metrics.inc(names.CLUSTER_FANOUTS)
            values = self._fetch_values(shard, pairs)
            slots = np.fromiter(
                (slot for slot, _, _ in entries), dtype=np.int64,
                count=len(entries),
            )
            out[slots] = values

        if len(by_shard) == 1:
            ((shard, entries),) = by_shard.items()
            fetch(shard, entries)
            return out
        if self.transport == "binary":
            self._scatter_async(by_shard, out)
            return out
        failures: list = []

        def worker(shard, entries):
            try:
                fetch(shard, entries)
            except Exception as exc:  # noqa: BLE001 — gathered and
                # re-raised on the caller's thread below; a scatter
                # thread must never die silently.
                failures.append(exc)

        threads = [
            threading.Thread(
                target=worker, args=(shard, entries),
                name=f"shard-router-{shard}", daemon=True,
            )
            for shard, entries in by_shard.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        return out

    def _scatter_async(self, by_shard: dict, out: np.ndarray) -> None:
        """Binary-transport scatter: every shard's sub-batch goes out as
        a concurrent future on the shared event loop (no scatter
        threads).  A shard whose future fails in transport records a
        breaker failure and is replayed through the remaining healthy
        candidates; an overload shed replays the same way but leaves
        the breaker untouched."""
        deadline_at = (None if self._deadline is None
                       else self._clock() + self._deadline)
        pairs_of = {
            shard: [(db_id, local) for _, db_id, local in entries]
            for shard, entries in by_shard.items()
        }
        futures: dict = {}
        taken: dict = {}  # shard -> (endpoint index, checked-out client)
        for shard, pairs in pairs_of.items():
            self._metrics.inc(names.CLUSTER_FANOUTS)
            endpoint = self._health.candidates(shard)[0]
            try:
                client = self._take_client(shard, endpoint)
                futures[shard] = client.submit_probe_many(pairs)
                taken[shard] = (endpoint, client)
            except ProbeTransportError:
                self._metrics.inc(names.CLUSTER_SHARD_ERRORS)
                self._health.breaker(shard, endpoint).record_failure()
                futures[shard] = None  # replayed blocking, below
                taken[shard] = (endpoint, None)
        for shard, entries in by_shard.items():
            pairs, future = pairs_of[shard], futures[shard]
            endpoint, client = taken[shard]
            op = lambda c, p=pairs: c.probe_many(p)  # noqa: E731
            if future is None:
                values = self._failover_rest(
                    shard, op, endpoint, deadline_at, last=None
                )
            else:
                try:
                    values = future.result()
                except ProbeOverloadedError as exc:
                    self._metrics.inc(names.CLUSTER_OVERLOADS)
                    self._return_client(shard, endpoint, client)
                    values = self._failover_rest(
                        shard, op, endpoint, deadline_at, exc
                    )
                except ProbeTransportError as exc:
                    self._metrics.inc(names.CLUSTER_SHARD_ERRORS)
                    self._health.breaker(shard, endpoint).record_failure()
                    client.close()
                    values = self._failover_rest(
                        shard, op, endpoint, deadline_at, exc
                    )
                except ProbeError:
                    self._health.breaker(shard, endpoint).record_success()
                    self._return_client(shard, endpoint, client)
                    raise
                else:
                    self._health.breaker(shard, endpoint).record_success()
                    self._return_client(shard, endpoint, client)
            slots = np.fromiter(
                (slot for slot, _, _ in entries), dtype=np.int64,
                count=len(entries),
            )
            out[slots] = values

    def depth_of(self, db_id, index: int):
        """Distances are not served over the wire; always ``None`` —
        same contract as :class:`~repro.serve.client.ProbeClient`."""
        return None

    # ------------------------------------------------------------ best move

    @property
    def game(self):
        """The capture game, reconstructed from manifest metadata."""
        if self._game is None:
            from ..games.registry import capture_game_for

            self._game = capture_game_for(self)
        return self._game

    def evaluate_moves(self, board: np.ndarray):
        """Exact evaluation of every legal move (probes are batched and
        scatter-gathered like any other batch)."""
        from ..db.query import evaluate_moves

        self._metrics.inc(names.CLUSTER_BEST_MOVE_QUERIES)
        return evaluate_moves(self.game, self, board)

    def best_moves(self, board: np.ndarray):
        """(position value, optimal moves) over the cluster — the same
        logic as the in-memory path, probing through the router."""
        from ..db.query import best_moves

        self._metrics.inc(names.CLUSTER_BEST_MOVE_QUERIES)
        return best_moves(self.game, self, board)

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Close every pooled client (and the shared binary event
        loop); safe to call repeatedly."""
        with self._client_lock:
            pools = [dict(pool) for pool in self._clients]
            for pool in self._clients:
                pool.clear()
            loop_thread, self._loop_thread = self._loop_thread, None
        for pool in pools:
            for client in pool.values():
                client.close()
        if loop_thread is not None:
            loop_thread.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
