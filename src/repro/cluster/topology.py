"""The live topology: which endpoints serve which shard right now.

The manifest (:mod:`repro.cluster.manifest`) is immutable — it records
how the data was split.  The topology (``topology.json``, schema
``repro/cluster-topology/v1``) is operational — it records where each
shard is reachable: one ordered endpoint list per shard, primary first,
replicas after.  ``repro cluster up`` writes it (with the child process
ids, so chaos tooling can SIGKILL a specific endpoint); the
:class:`~repro.cluster.router.ShardRouter` reads it and walks each
shard's list on failover.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = ["SCHEMA", "TOPOLOGY_NAME", "ShardEndpoint", "ClusterTopology"]

SCHEMA = "repro/cluster-topology/v1"

#: Default file name of the topology inside a cluster directory.
TOPOLOGY_NAME = "topology.json"


@dataclass(frozen=True)
class ShardEndpoint:
    """One reachable server of one shard; ``pid`` is the serving
    process when the endpoint was launched locally (``None`` for a
    remote or hand-written topology)."""

    host: str
    port: int
    pid: int | None = None

    @property
    def address(self) -> tuple:
        """``(host, port)`` — what a client connects to."""
        return (self.host, self.port)


@dataclass
class ClusterTopology:
    """Endpoint lists per shard: ``endpoints[shard][0]`` is the primary,
    the rest are replicas in failover order."""

    cluster_dir: str
    endpoints: list

    @property
    def n_shards(self) -> int:
        """Shard count of the topology."""
        return len(self.endpoints)

    @property
    def n_endpoints(self) -> int:
        """Total endpoints across shards (primaries plus replicas)."""
        return sum(len(group) for group in self.endpoints)

    def shard_endpoints(self, shard: int) -> list:
        """The ordered endpoint list of one shard."""
        return list(self.endpoints[shard])

    # ------------------------------------------------------------------ io

    def save(self, path) -> Path:
        """Write the topology atomically to ``path`` (a file path or a
        cluster directory)."""
        from ..resilience.checkpoint import atomic_write_text

        path = Path(path)
        if path.is_dir():
            path = path / TOPOLOGY_NAME
        payload = json.dumps(
            {
                "schema": SCHEMA,
                "cluster_dir": self.cluster_dir,
                "shards": [
                    [
                        {"host": e.host, "port": e.port, "pid": e.pid}
                        for e in group
                    ]
                    for group in self.endpoints
                ],
            },
            indent=2,
            sort_keys=True,
        )
        atomic_write_text(path, payload + "\n")
        return path

    @classmethod
    def load(cls, path) -> "ClusterTopology":
        """Read and validate a topology file (or a cluster directory
        containing one)."""
        path = Path(path)
        if path.is_dir():
            path = path / TOPOLOGY_NAME
        try:
            raw = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"cannot read topology {path}: {exc}") from exc
        if raw.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported topology schema {raw.get('schema')!r}"
            )
        shards = raw.get("shards")
        if not isinstance(shards, list) or not shards:
            raise ValueError(f"topology {path} lists no shards")
        endpoints = []
        for group in shards:
            if not group:
                raise ValueError(f"topology {path} has a shard with no endpoints")
            endpoints.append(
                [
                    ShardEndpoint(
                        host=str(e["host"]),
                        port=int(e["port"]),
                        pid=(int(e["pid"]) if e.get("pid") is not None else None),
                    )
                    for e in group
                ]
            )
        return cls(cluster_dir=str(raw.get("cluster_dir", "")), endpoints=endpoints)
