"""Failure detection and auto-restart for a launched cluster.

A :class:`ClusterMonitor` runs one background thread over a
:class:`~repro.cluster.launch.ClusterSupervisor`: every
``health_interval`` seconds it polls each child process and, for
children that look alive, performs a lightweight TCP liveness probe
(:func:`repro.cluster.health.probe_endpoint` — one JSON ``ping`` round
trip, answered by both wire protocols).  A dead or unresponsive
endpoint is respawned from its recorded
:class:`~repro.cluster.launch.SpawnSpec` **on its original port**, so
the routers already holding the topology reconnect to the replacement
without any rendezvous; the breaker machinery in
:mod:`repro.cluster.router` then reinstates the endpoint on its next
successful request.

Restarts are governed by a :class:`RestartPolicy`:

* bounded exponential backoff between consecutive restarts of one
  endpoint (:func:`repro.resilience.retry.backoff_delay` — the same
  deterministic curve every other retry path here uses), scheduled
  rather than slept so one flapping endpoint never stalls monitoring
  of the others;
* a flap detector — more than ``max_restarts`` restarts of one
  endpoint within ``window_seconds`` means restarting is not fixing
  anything (corrupt shard file, port stolen, OOM loop), so the monitor
  **gives up loudly**: the endpoint is marked abandoned, the event is
  counted on ``cluster.supervisor.giveups`` and reported through the
  event callback, and the remaining endpoints stay supervised.

The monitor never *decides* cluster membership — the topology file is
rewritten after every successful respawn (same addresses, fresh pid)
so external chaos tooling can watch pids change, but routing decisions
stay with the router's circuit breakers.

Observability: ``cluster.supervisor.restarts`` / ``giveups`` /
``health_probes`` counters, plus ``cluster.supervisor.alive`` and
``cluster.supervisor.uptime_seconds`` gauges, refreshed every tick.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..obs import NULL_METRICS, names
from ..resilience.retry import backoff_delay
from .health import probe_endpoint
from .launch import ClusterLaunchError

__all__ = ["RestartPolicy", "EndpointState", "ClusterMonitor"]

#: Consecutive failed liveness probes before a live-looking process is
#: declared wedged and killed for respawn.
PROBE_FAILURES_TO_KILL = 3


@dataclass(frozen=True)
class RestartPolicy:
    """Bounds on the monitor's restart behaviour."""

    #: Restarts of one endpoint tolerated inside the window before the
    #: monitor gives up on it.
    max_restarts: int = 5
    #: Sliding flap-detection window in seconds.
    window_seconds: float = 60.0
    #: Exponential backoff between restarts of one endpoint: the n-th
    #: consecutive restart waits ``min(base * 2**(n-1), cap)`` seconds.
    backoff_base: float = 0.2
    backoff_cap: float = 5.0

    def __post_init__(self):
        if self.max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")

    def delay(self, consecutive: int) -> float:
        """Backoff before the ``consecutive``-th restart in a row."""
        return backoff_delay(consecutive, self.backoff_base,
                             self.backoff_cap)


class EndpointState:
    """Per-endpoint supervision bookkeeping (monitor thread only)."""

    __slots__ = ("restart_times", "total_restarts", "probe_failures",
                 "gave_up", "next_attempt_at", "pending")

    def __init__(self):
        self.restart_times: list = []  # clock() stamps, pruned to window
        self.total_restarts = 0
        self.probe_failures = 0
        self.gave_up = False
        self.next_attempt_at = 0.0  # backoff gate for the next respawn
        self.pending = False  # death seen, respawn waiting on backoff


class ClusterMonitor:
    """Watch a supervisor's children; respawn the ones that die.

    ``on_event(kind, shard, endpoint, detail)`` receives
    ``"restart" | "giveup" | "unresponsive"`` notifications (the CLI
    prints them; tests collect them).  ``clock``/``sleep`` are
    injectable so policy tests run without real time.
    """

    def __init__(self, supervisor, policy: RestartPolicy | None = None,
                 health_interval: float = 1.0, probe_timeout: float = 1.0,
                 metrics=None, topology_path=None, on_event=None,
                 ready_timeout: float | None = None,
                 clock=time.monotonic, sleep=None):
        if health_interval <= 0:
            raise ValueError("health_interval must be positive")
        self.supervisor = supervisor
        self.policy = policy if policy is not None else RestartPolicy()
        self.health_interval = float(health_interval)
        self.probe_timeout = float(probe_timeout)
        self._metrics = NULL_METRICS if metrics is None else metrics
        self._topology_path = topology_path
        self._on_event = on_event
        self._ready_timeout = ready_timeout
        self._clock = clock
        self._stop = threading.Event()
        self._sleep = sleep if sleep is not None else self._stop.wait
        self._thread: threading.Thread | None = None
        self._started_at = clock()
        self._states = {
            key: EndpointState() for key in supervisor.endpoints()
        }

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "ClusterMonitor":
        """Run the monitor loop on a background thread and return."""
        self._thread = threading.Thread(
            target=self._run, name="cluster-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop monitoring (children keep running; shutting them down
        is the supervisor's job).  Joins the monitor thread."""
        self._stop.set()
        if (self._thread is not None
                and self._thread is not threading.current_thread()):
            self._thread.join()

    def __enter__(self) -> "ClusterMonitor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------ inspection

    def gave_up_on(self) -> list:
        """``(shard, endpoint)`` pairs the flap detector abandoned."""
        return sorted(
            key for key, state in self._states.items() if state.gave_up
        )

    def restarts(self) -> int:
        """Total successful respawns so far."""
        return sum(
            state.total_restarts for state in self._states.values()
        )

    def restarts_of(self, shard: int, endpoint: int = 0) -> int:
        """Successful respawns of one endpoint."""
        return self._states[(shard, endpoint)].total_restarts

    # ---------------------------------------------------------------- loop

    def _run(self) -> None:
        while not self._stop.is_set():
            self.check_once()
            self._sleep(self.health_interval)

    def check_once(self) -> None:
        """One supervision pass over every endpoint (public so tests
        and the CLI can drive the loop synchronously)."""
        for shard, endpoint in self.supervisor.endpoints():
            state = self._states[(shard, endpoint)]
            if state.gave_up or self._stop.is_set():
                continue
            self._check_endpoint(shard, endpoint, state)
        self._metrics.set_gauge(
            names.CLUSTER_SUPERVISOR_ALIVE, self.supervisor.alive()
        )
        self._metrics.set_gauge(
            names.CLUSTER_SUPERVISOR_UPTIME_SECONDS,
            self._clock() - self._started_at,
        )

    def _check_endpoint(self, shard: int, endpoint: int,
                        state: EndpointState) -> None:
        proc = self.supervisor.process(shard, endpoint)
        if proc.poll() is None and not state.pending:
            if not self._probe(shard, endpoint):
                state.probe_failures += 1
                if state.probe_failures < PROBE_FAILURES_TO_KILL:
                    return
                # Process alive but not answering: wedged.  Kill it so
                # the ordinary dead-endpoint path takes over.
                self._notify(
                    "unresponsive", shard, endpoint,
                    f"no pong after {state.probe_failures} probes; killing",
                )
                proc.kill()
                proc.wait()
            else:
                state.probe_failures = 0
                return
        # Dead (or just killed).  Gate the respawn on the backoff clock.
        if not state.pending:
            state.pending = True
            state.probe_failures = 0
            consecutive = len(state.restart_times) + 1
            state.next_attempt_at = (
                self._clock() + self.policy.delay(consecutive)
            )
        if self._clock() < state.next_attempt_at:
            return
        self._restart(shard, endpoint, state)

    def _restart(self, shard: int, endpoint: int,
                 state: EndpointState) -> None:
        now = self._clock()
        window_start = now - self.policy.window_seconds
        state.restart_times = [
            t for t in state.restart_times if t >= window_start
        ]
        if len(state.restart_times) >= self.policy.max_restarts:
            state.gave_up = True
            state.pending = False
            self._metrics.inc(names.CLUSTER_SUPERVISOR_GIVEUPS)
            self._notify(
                "giveup", shard, endpoint,
                f"{len(state.restart_times)} restarts within "
                f"{self.policy.window_seconds}s; abandoning this endpoint",
            )
            return
        try:
            kwargs = (
                {} if self._ready_timeout is None
                else {"ready_timeout": self._ready_timeout}
            )
            replacement = self.supervisor.respawn(shard, endpoint, **kwargs)
        except ClusterLaunchError as exc:
            # The respawn itself failed; count it as an attempt and
            # back off harder before the next one.
            state.restart_times.append(now)
            consecutive = len(state.restart_times) + 1
            state.next_attempt_at = now + self.policy.delay(consecutive)
            self._notify("restart-failed", shard, endpoint, str(exc))
            return
        state.restart_times.append(now)
        state.total_restarts += 1
        state.pending = False
        self._metrics.inc(names.CLUSTER_SUPERVISOR_RESTARTS)
        self._notify(
            "restart", shard, endpoint,
            f"respawned on {replacement.host}:{replacement.port} "
            f"(pid {replacement.pid})",
        )
        if self._topology_path is not None:
            self.supervisor.topology.save(self._topology_path)

    # -------------------------------------------------------------- helpers

    def _probe(self, shard: int, endpoint: int) -> bool:
        address = self.supervisor.topology.endpoints[shard][endpoint]
        self._metrics.inc(names.CLUSTER_SUPERVISOR_HEALTH_PROBES)
        return probe_endpoint(
            address.host, address.port, timeout=self.probe_timeout
        )

    def _notify(self, kind: str, shard: int, endpoint: int,
                detail: str) -> None:
        if self._on_event is not None:
            self._on_event(kind, shard, endpoint, detail)
