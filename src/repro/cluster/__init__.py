"""Sharded serving cluster: split, launch, route, and self-heal.

The paper's core claim is that distributing the endgame database over
many machines' memories makes interactive probing feasible at database
sizes no single machine can hold.  This package is that claim's serving
shape:

* :mod:`repro.cluster.manifest` — split one paged store into per-shard
  page files through a :class:`~repro.core.partition.Partition`, and
  the shard manifest that records the split;
* :mod:`repro.cluster.launch` — run N shard :class:`ProbeServer`
  processes (plus optional replicas) and publish their addresses as a
  topology file;
* :mod:`repro.cluster.router` — the :class:`ShardRouter` that hashes
  positions through the recorded partition, scatter-gathers batched
  probes across shards, and fails over on endpoint health;
* :mod:`repro.cluster.health` — per-endpoint circuit breakers and the
  liveness probe (the router reinstates restarted endpoints through
  these);
* :mod:`repro.cluster.supervise` — the monitor thread that detects
  dead or wedged shard servers and respawns them on their original
  ports, with backoff and a flap detector.

See docs/CLUSTER.md for the operational story (including the failure
model) and the ``repro cluster`` CLI (``split`` | ``up`` | ``probe``).
"""

from .health import CircuitBreaker, EndpointHealth, probe_endpoint
from .manifest import ShardManifest, split_store
from .router import ShardRouter
from .supervise import ClusterMonitor, RestartPolicy
from .topology import ClusterTopology, ShardEndpoint

__all__ = [
    "ShardManifest",
    "split_store",
    "ShardRouter",
    "ClusterTopology",
    "ShardEndpoint",
    "CircuitBreaker",
    "EndpointHealth",
    "probe_endpoint",
    "ClusterMonitor",
    "RestartPolicy",
]
