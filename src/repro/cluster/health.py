"""Per-endpoint health: circuit breakers and liveness probes.

The router's original failure handling was a one-way ratchet: a
transport failure *rotated* the shard to its next endpoint, and the
demoted primary was never consulted again — a restarted server stayed
invisible forever.  This module replaces that with the standard circuit
breaker per endpoint:

``closed``
    The endpoint is trusted; requests flow.  ``threshold`` consecutive
    transport failures trip it open.  (The default threshold is 1: one
    *surfaced* transport failure already represents an exhausted
    reconnect policy inside the client, not a single dropped packet.)
``open``
    The endpoint is distrusted; the router prefers every other
    endpoint and only falls back to an open one when nothing healthier
    is left.  After ``reset_seconds`` the breaker moves to half-open.
``half-open``
    Probe-back: the endpoint is *preferred* again so the next real
    request doubles as the probe.  Success closes the breaker (the
    restarted primary is reinstated); failure re-opens it for another
    ``reset_seconds``.

Probing with real traffic keeps the router dependency-free and means
reinstatement needs no background thread: the price is one failed
request against a still-dead endpoint per reset window, which the
router absorbs as an ordinary failover.

:class:`EndpointHealth` holds one breaker per (shard, endpoint) and
orders each shard's candidates: half-open first (probe-back), then
closed, then open as a last resort — all in topology order (primary
before replicas) within each class, so a healthy cluster routes
exactly as before this module existed.

:func:`probe_endpoint` is the supervisor's liveness check: one
length-prefixed JSON ``ping`` round trip, which both the threaded JSON
server and the asyncio binary server answer (the latter through its
version-byte JSON fallback).

Clocks are injectable everywhere (``clock`` returns monotonic seconds)
so breaker tests advance time without sleeping.
"""

from __future__ import annotations

import socket
import threading
import time

from ..obs import NULL_METRICS, names
from ..serve.protocol import ProtocolError, recv_message, send_message

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "CircuitBreaker",
    "EndpointHealth",
    "probe_endpoint",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: Consecutive surfaced transport failures that trip a breaker open.
DEFAULT_THRESHOLD = 1

#: Seconds an open breaker waits before allowing a probe-back.
DEFAULT_RESET_SECONDS = 1.0


class CircuitBreaker:
    """Closed → open → half-open → closed, driven by request outcomes.

    Thread-safe (the router's scatter threads record outcomes
    concurrently).  ``metrics`` counts transitions on the
    ``cluster.breaker.*`` family; ``clock`` is injectable for tests.
    """

    def __init__(self, threshold: int = DEFAULT_THRESHOLD,
                 reset_seconds: float = DEFAULT_RESET_SECONDS,
                 clock=time.monotonic, metrics=None):
        if int(threshold) < 1:
            raise ValueError("threshold must be >= 1")
        if float(reset_seconds) <= 0:
            raise ValueError("reset_seconds must be positive")
        self.threshold = int(threshold)
        self.reset_seconds = float(reset_seconds)
        self._clock = clock
        self._metrics = NULL_METRICS if metrics is None else metrics
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._failures = 0
        self._open_until = 0.0

    @property
    def state(self) -> str:
        """Current state; lazily moves open → half-open when the reset
        window has elapsed (counted on ``cluster.breaker.probes``)."""
        with self._lock:
            return self._observe()

    def _observe(self) -> str:
        # Caller holds the lock.
        if (self._state == BREAKER_OPEN
                and self._clock() >= self._open_until):
            self._state = BREAKER_HALF_OPEN
            self._metrics.inc(names.CLUSTER_BREAKER_PROBES)
        return self._state

    def allow(self) -> bool:
        """Whether a request should be sent here at all (False only
        while hard-open; half-open allows the probe-back traffic)."""
        return self.state != BREAKER_OPEN

    def record_success(self) -> bool:
        """A request completed; closes the breaker.  Returns True when
        this *reinstated* the endpoint (it was not closed before)."""
        with self._lock:
            reinstated = self._observe() != BREAKER_CLOSED
            self._state = BREAKER_CLOSED
            self._failures = 0
        if reinstated:
            self._metrics.inc(names.CLUSTER_BREAKER_CLOSES)
        return reinstated

    def record_failure(self) -> None:
        """A transport failure; trips the breaker at the threshold, and
        instantly re-opens a half-open breaker (the probe failed)."""
        with self._lock:
            state = self._observe()
            self._failures += 1
            trip = (state == BREAKER_HALF_OPEN
                    or (state == BREAKER_CLOSED
                        and self._failures >= self.threshold))
            if trip:
                self._state = BREAKER_OPEN
                self._open_until = self._clock() + self.reset_seconds
        if trip:
            self._metrics.inc(names.CLUSTER_BREAKER_OPENS)


#: Candidate ordering: probe-back first, trusted next, distrusted last.
_STATE_RANK = {BREAKER_HALF_OPEN: 0, BREAKER_CLOSED: 1, BREAKER_OPEN: 2}


class EndpointHealth:
    """One :class:`CircuitBreaker` per (shard, endpoint).

    ``shape`` is the per-shard endpoint count (the router's topology
    shape).  :meth:`candidates` never *excludes* an endpoint — an open
    breaker only demotes it to the back of the order — so a call still
    tries every endpoint at most once before failing loudly, and the
    per-call work stays bounded by the endpoint count.
    """

    def __init__(self, shape, threshold: int = DEFAULT_THRESHOLD,
                 reset_seconds: float = DEFAULT_RESET_SECONDS,
                 clock=time.monotonic, metrics=None):
        self._breakers = [
            [
                CircuitBreaker(threshold=threshold,
                               reset_seconds=reset_seconds,
                               clock=clock, metrics=metrics)
                for _ in range(int(count))
            ]
            for count in shape
        ]

    def breaker(self, shard: int, endpoint: int) -> CircuitBreaker:
        """The breaker guarding one endpoint."""
        return self._breakers[shard][endpoint]

    def candidates(self, shard: int) -> list:
        """Endpoint indices of one shard in try-order: half-open
        (probe-back) first, closed next, open last; topology order
        (primary before replicas) within each class."""
        states = [b.state for b in self._breakers[shard]]
        return sorted(range(len(states)),
                      key=lambda i: (_STATE_RANK[states[i]], i))

    def snapshot(self) -> list:
        """Breaker states per shard, router-shaped:
        ``[[state, ...], ...]`` — the chaos soak's reinstatement
        assertion reads this."""
        return [[b.state for b in group] for group in self._breakers]


def probe_endpoint(host: str, port: int, timeout: float = 1.0) -> bool:
    """One JSON ``ping`` round trip against a probe server.

    True only for a well-formed pong.  Both server implementations
    answer it: the threaded server natively, the asyncio server through
    its version-byte JSON fallback — which is what lets one probe
    implementation health-check every cluster protocol.
    """
    try:
        with socket.create_connection((host, port),
                                      timeout=timeout) as sock:
            sock.settimeout(timeout)
            send_message(sock, {"op": "ping"})
            response = recv_message(sock)
    except (OSError, ProtocolError, ValueError):
        return False
    return bool(response and response.get("ok") and response.get("pong"))
