"""Launch shard server processes and publish the cluster topology.

``launch_cluster`` starts one ``repro serve`` subprocess per shard file
(plus ``replicas`` extra processes per shard, serving the *same* shard
file), waits for every server's ready file, and returns a
:class:`ClusterSupervisor` holding the live
:class:`~repro.cluster.topology.ClusterTopology` — including child
process ids, so chaos tooling can SIGKILL one precise endpoint and
watch the router reroute.

Real processes, not threads, on purpose: a shard that dies takes only
its own memory and sockets with it (the paper's machines fail
independently), and the supervisor's shutdown path must tolerate
children that are already gone.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from .manifest import ShardManifest
from .topology import ClusterTopology, ShardEndpoint

__all__ = ["ClusterLaunchError", "ClusterSupervisor", "launch_cluster"]

#: How long one shard server may take to write its ready file.
READY_TIMEOUT_SECONDS = 30.0


class ClusterLaunchError(RuntimeError):
    """A shard server failed to come up within the ready timeout."""


class ClusterSupervisor:
    """Owns the shard server processes of one launched cluster.

    ``processes[shard]`` mirrors ``topology.endpoints[shard]``: primary
    first, replicas after.  :meth:`shutdown` interrupts every child that
    is still alive and escalates to SIGKILL after a grace period —
    idempotent, and unbothered by children that already died (that is
    the failure mode the cluster exists to absorb).
    """

    def __init__(self, topology: ClusterTopology, processes: list):
        self.topology = topology
        self._processes = processes

    def process(self, shard: int, endpoint: int = 0) -> subprocess.Popen:
        """The child serving one endpoint (0 = primary)."""
        return self._processes[shard][endpoint]

    def alive(self) -> int:
        """How many shard server processes are currently running."""
        return sum(
            1
            for group in self._processes
            for proc in group
            if proc.poll() is None
        )

    def shutdown(self, grace_seconds: float = 10.0) -> None:
        """Stop every child: SIGINT, wait up to the grace period, then
        SIGKILL stragglers.  Safe to call repeatedly."""
        for group in self._processes:
            for proc in group:
                if proc.poll() is None:
                    proc.send_signal(signal.SIGINT)
        deadline = time.monotonic() + grace_seconds
        for group in self._processes:
            for proc in group:
                remaining = max(deadline - time.monotonic(), 0.1)
                try:
                    proc.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

    def __enter__(self) -> "ClusterSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _wait_ready(path: Path, proc: subprocess.Popen,
                timeout: float) -> tuple:
    """(host, port) from a server's ready file, polling the child."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists():
            text = path.read_text().strip()
            if text:
                host, port = text.split()
                return host, int(port)
        if proc.poll() is not None:
            raise ClusterLaunchError(
                f"shard server exited with {proc.returncode} before ready"
            )
        time.sleep(0.02)
    raise ClusterLaunchError(f"no ready file at {path} after {timeout}s")


def launch_cluster(
    cluster_dir,
    replicas: int = 0,
    host: str = "127.0.0.1",
    cache_kb: int = 65536,
    ready_timeout: float = READY_TIMEOUT_SECONDS,
) -> ClusterSupervisor:
    """Start every shard server of a split cluster directory.

    Each shard gets ``1 + replicas`` ``repro serve`` processes over its
    shard file, all on ephemeral ports.  Returns a supervisor whose
    topology lists each shard's endpoints (primary first) with child
    pids; callers persist it with ``supervisor.topology.save(...)``.
    On any startup failure the already-started children are shut down
    before the error propagates.
    """
    if replicas < 0:
        raise ValueError("replicas must be >= 0")
    cluster_dir = Path(cluster_dir).resolve()
    manifest = ShardManifest.load(cluster_dir)
    ready_dir = Path(tempfile.mkdtemp(prefix="repro-cluster-ready-"))
    processes: list = []
    endpoints: list = []
    try:
        for shard, shard_file in enumerate(manifest.shard_files):
            group_procs = []
            group_ready = []
            for copy in range(1 + replicas):
                ready = ready_dir / f"shard{shard}-copy{copy}"
                proc = subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "serve",
                        str(cluster_dir / shard_file),
                        "--host", host, "--port", "0",
                        "--cache-kb", str(cache_kb),
                        "--ready-file", str(ready),
                    ],
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
                group_procs.append(proc)
                group_ready.append(ready)
            processes.append(group_procs)
            endpoints.append(list(zip(group_procs, group_ready)))
        resolved = []
        for group in endpoints:
            group_eps = []
            for proc, ready in group:
                ep_host, ep_port = _wait_ready(ready, proc, ready_timeout)
                group_eps.append(
                    ShardEndpoint(host=ep_host, port=ep_port, pid=proc.pid)
                )
            resolved.append(group_eps)
    except Exception:
        for group_procs in processes:
            for proc in group_procs:
                if proc.poll() is None:
                    proc.kill()
        raise
    topology = ClusterTopology(
        cluster_dir=str(cluster_dir), endpoints=resolved
    )
    return ClusterSupervisor(topology, processes)
