"""Launch shard server processes and publish the cluster topology.

``launch_cluster`` starts one ``repro serve`` subprocess per shard file
(plus ``replicas`` extra processes per shard, serving the *same* shard
file), waits for every server's ready file, and returns a
:class:`ClusterSupervisor` holding the live
:class:`~repro.cluster.topology.ClusterTopology` — including child
process ids, so chaos tooling can SIGKILL one precise endpoint and
watch the router reroute.

Every endpoint keeps its :class:`SpawnSpec` — the full recipe to start
that exact server again.  :meth:`ClusterSupervisor.respawn` replays the
recipe **on the endpoint's original port** (the servers bind with
``SO_REUSEADDR``), so a restarted primary is reachable at the address
the topology and every router already know.  The monitor thread that
decides *when* to respawn lives in :mod:`repro.cluster.supervise`.

Fault injection flows through here too: ``fault_specs`` hands
deterministic fault plans (:mod:`repro.resilience.faults`) to the shard
*primaries* — a ``crash-shard:shard=K`` spec lands only on shard K —
and each faulted endpoint gets a private ``--fault-state-dir`` so a
once-only fault that already fired stays fired across a respawn.

Real processes, not threads, on purpose: a shard that dies takes only
its own memory and sockets with it (the paper's machines fail
independently), and the supervisor's shutdown path must tolerate
children that are already gone.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..resilience.faults import parse_fault
from .manifest import ShardManifest
from .topology import ClusterTopology, ShardEndpoint

__all__ = [
    "ClusterLaunchError",
    "ClusterSupervisor",
    "SpawnSpec",
    "launch_cluster",
]

#: How long one shard server may take to write its ready file.
READY_TIMEOUT_SECONDS = 30.0


class ClusterLaunchError(RuntimeError):
    """A shard server failed to come up within the ready timeout."""


@dataclass(frozen=True)
class SpawnSpec:
    """Everything needed to (re)start one shard server process."""

    shard: int
    copy: int  # 0 = primary, 1.. = replicas
    shard_file: str
    host: str
    cache_kb: int
    protocol: str = "json"
    ready_dir: str = ""
    fault_specs: tuple = ()
    fault_state_dir: str | None = None
    max_inflight: int | None = None
    extra_args: tuple = field(default=())

    def command(self, port: int, ready_path: Path) -> list:
        """The ``repro serve`` argv for this endpoint on ``port``
        (0 for an ephemeral first launch, the recorded port on
        respawn)."""
        argv = [
            sys.executable, "-m", "repro", "serve", self.shard_file,
            "--host", self.host, "--port", str(int(port)),
            "--cache-kb", str(self.cache_kb),
            "--protocol", self.protocol,
            "--ready-file", str(ready_path),
        ]
        for spec in self.fault_specs:
            argv += ["--inject-fault", spec]
        if self.fault_state_dir is not None:
            argv += ["--fault-state-dir", self.fault_state_dir]
        if self.max_inflight is not None:
            argv += ["--max-inflight", str(self.max_inflight)]
        argv += list(self.extra_args)
        return argv

    def spawn(self, port: int, ready_path: Path) -> subprocess.Popen:
        """Start the server process (stdout/stderr silenced — the
        wire protocol is the interface, ready files the handshake)."""
        if ready_path.exists():
            ready_path.unlink()
        return subprocess.Popen(
            self.command(port, ready_path),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )


class ClusterSupervisor:
    """Owns the shard server processes of one launched cluster.

    ``processes[shard]`` mirrors ``topology.endpoints[shard]``: primary
    first, replicas after.  :meth:`shutdown` interrupts every child that
    is still alive and escalates to SIGKILL after a grace period —
    idempotent, unbothered by children that already died (that is the
    failure mode the cluster exists to absorb) — and records every
    child's exit status in :attr:`exit_statuses`.

    :meth:`respawn` restarts one dead endpoint from its spawn spec on
    the endpoint's original port and rewrites the topology entry's pid;
    the restart *policy* (backoff, flap detection, health probing)
    lives in :class:`~repro.cluster.supervise.ClusterMonitor`.
    """

    def __init__(self, topology: ClusterTopology, processes: list,
                 specs: list | None = None, ready_dir=None):
        self.topology = topology
        self._processes = processes
        self._specs = specs
        self._ready_dir = None if ready_dir is None else Path(ready_dir)
        #: ``{(shard, endpoint): returncode}`` of every reaped child —
        #: filled by :meth:`shutdown` and :meth:`respawn` (the status
        #: of the process that was replaced).
        self.exit_statuses: dict = {}

    def process(self, shard: int, endpoint: int = 0) -> subprocess.Popen:
        """The child serving one endpoint (0 = primary)."""
        return self._processes[shard][endpoint]

    def spec(self, shard: int, endpoint: int = 0) -> SpawnSpec:
        """The spawn recipe of one endpoint (None for hand-built
        supervisors that never launched processes)."""
        return None if self._specs is None else self._specs[shard][endpoint]

    def endpoints(self):
        """Yield every ``(shard, endpoint_index)`` pair."""
        for shard, group in enumerate(self._processes):
            for endpoint in range(len(group)):
                yield shard, endpoint

    def alive(self) -> int:
        """How many shard server processes are currently running."""
        return sum(
            1
            for group in self._processes
            for proc in group
            if proc.poll() is None
        )

    def respawn(self, shard: int, endpoint: int,
                ready_timeout: float = READY_TIMEOUT_SECONDS
                ) -> ShardEndpoint:
        """Restart one dead endpoint on its original port.

        The old process must already be gone (its exit status is
        recorded); the new child must come up on the *same* address so
        routers holding the topology reconnect without a rendezvous.
        Raises :class:`ClusterLaunchError` when the replacement fails
        to become ready.
        """
        if self._specs is None:
            raise ClusterLaunchError(
                "supervisor has no spawn specs; cannot respawn"
            )
        old = self._processes[shard][endpoint]
        if old.poll() is None:
            raise ClusterLaunchError(
                f"shard {shard} endpoint {endpoint} (pid {old.pid}) "
                "is still running; refusing to respawn over it"
            )
        self.exit_statuses[(shard, endpoint)] = old.returncode
        address = self.topology.endpoints[shard][endpoint]
        spec = self._specs[shard][endpoint]
        ready_dir = self._ready_dir or Path(
            tempfile.mkdtemp(prefix="repro-cluster-ready-")
        )
        ready = ready_dir / f"shard{shard}-copy{endpoint}-respawn"
        proc = spec.spawn(address.port, ready)
        try:
            host, port = _wait_ready(ready, proc, ready_timeout)
        except ClusterLaunchError:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            raise
        if port != address.port:
            proc.kill()
            proc.wait()
            raise ClusterLaunchError(
                f"respawned shard {shard} endpoint {endpoint} came up on "
                f"port {port}, expected {address.port}"
            )
        replacement = ShardEndpoint(host=host, port=port, pid=proc.pid)
        self._processes[shard][endpoint] = proc
        self.topology.endpoints[shard][endpoint] = replacement
        return replacement

    def shutdown(self, grace_seconds: float = 10.0) -> None:
        """Stop every child: SIGINT, wait up to the grace period, then
        SIGKILL stragglers.  Safe to call repeatedly; every child's
        exit status lands in :attr:`exit_statuses`."""
        for group in self._processes:
            for proc in group:
                if proc.poll() is None:
                    proc.send_signal(signal.SIGINT)
        deadline = time.monotonic() + grace_seconds
        for shard, group in enumerate(self._processes):
            for endpoint, proc in enumerate(group):
                remaining = max(deadline - time.monotonic(), 0.1)
                try:
                    proc.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
                self.exit_statuses[(shard, endpoint)] = proc.returncode

    def __enter__(self) -> "ClusterSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _wait_ready(path: Path, proc: subprocess.Popen,
                timeout: float) -> tuple:
    """(host, port) from a server's ready file, polling the child."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists():
            text = path.read_text().strip()
            if text:
                host, port = text.split()
                return host, int(port)
        if proc.poll() is not None:
            raise ClusterLaunchError(
                f"shard server exited with {proc.returncode} before ready"
            )
        time.sleep(0.02)
    raise ClusterLaunchError(f"no ready file at {path} after {timeout}s")


def _assign_faults(fault_specs, shard: int, copy: int) -> tuple:
    """The fault specs one endpoint should carry.

    Faults land on primaries only (replicas stay clean so failover has
    somewhere healthy to go); a ``crash-shard`` spec with ``shard=K``
    lands only on shard K's primary."""
    if not fault_specs or copy != 0:
        return ()
    assigned = []
    for spec in fault_specs:
        kind, params = parse_fault(spec)
        if kind == "crash-shard" and "shard" in params:
            if int(params["shard"]) != shard:
                continue
        assigned.append(spec)
    return tuple(assigned)


def launch_cluster(
    cluster_dir,
    replicas: int = 0,
    host: str = "127.0.0.1",
    cache_kb: int = 65536,
    ready_timeout: float = READY_TIMEOUT_SECONDS,
    protocol: str = "json",
    fault_specs=None,
    fault_state_dir=None,
    max_inflight: int | None = None,
) -> ClusterSupervisor:
    """Start every shard server of a split cluster directory.

    Each shard gets ``1 + replicas`` ``repro serve`` processes over its
    shard file, all on ephemeral ports.  Returns a supervisor whose
    topology lists each shard's endpoints (primary first) with child
    pids; callers persist it with ``supervisor.topology.save(...)``.
    On any startup failure the already-started children are shut down
    before the error propagates.

    ``fault_specs`` injects deterministic faults into shard primaries
    (see :func:`_assign_faults`); each faulted endpoint gets its own
    state directory under ``fault_state_dir`` (default: next to the
    ready files) so once-only faults survive a supervisor respawn.
    ``max_inflight`` forwards the overload budget to every server.
    """
    if replicas < 0:
        raise ValueError("replicas must be >= 0")
    if protocol not in ("json", "binary"):
        raise ValueError(f"unknown protocol {protocol!r}")
    if fault_specs:
        for spec in fault_specs:
            parse_fault(spec)  # fail fast, before any child starts
    cluster_dir = Path(cluster_dir).resolve()
    manifest = ShardManifest.load(cluster_dir)
    ready_dir = Path(tempfile.mkdtemp(prefix="repro-cluster-ready-"))
    fault_base = (
        Path(fault_state_dir) if fault_state_dir is not None
        else ready_dir / "faults"
    )
    processes: list = []
    specs: list = []
    endpoints: list = []
    try:
        for shard, shard_file in enumerate(manifest.shard_files):
            group_procs = []
            group_specs = []
            group_ready = []
            for copy in range(1 + replicas):
                assigned = _assign_faults(fault_specs, shard, copy)
                state_dir = None
                if assigned:
                    state_dir = fault_base / f"shard{shard}-copy{copy}"
                    state_dir.mkdir(parents=True, exist_ok=True)
                spec = SpawnSpec(
                    shard=shard, copy=copy,
                    shard_file=str(cluster_dir / shard_file),
                    host=host, cache_kb=cache_kb, protocol=protocol,
                    ready_dir=str(ready_dir),
                    fault_specs=assigned,
                    fault_state_dir=(
                        None if state_dir is None else str(state_dir)
                    ),
                    max_inflight=max_inflight,
                )
                ready = ready_dir / f"shard{shard}-copy{copy}"
                proc = spec.spawn(0, ready)
                group_procs.append(proc)
                group_specs.append(spec)
                group_ready.append(ready)
            processes.append(group_procs)
            specs.append(group_specs)
            endpoints.append(list(zip(group_procs, group_ready)))
        resolved = []
        for group in endpoints:
            group_eps = []
            for proc, ready in group:
                ep_host, ep_port = _wait_ready(ready, proc, ready_timeout)
                group_eps.append(
                    ShardEndpoint(host=ep_host, port=ep_port, pid=proc.pid)
                )
            resolved.append(group_eps)
    except Exception:
        for group_procs in processes:
            for proc in group_procs:
                if proc.poll() is None:
                    proc.kill()
        raise
    topology = ClusterTopology(
        cluster_dir=str(cluster_dir), endpoints=resolved
    )
    return ClusterSupervisor(
        topology, processes, specs=specs, ready_dir=ready_dir
    )
