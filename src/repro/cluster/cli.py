"""``repro cluster`` — split, launch, and probe a sharded cluster.

Subcommands (all flags documented in docs/CLUSTER.md):

split
    Partition a database archive (or paged store) into per-shard page
    files plus a ``cluster.json`` shard manifest.
up
    Launch every shard server (plus optional replicas), write the
    ``topology.json`` endpoint map, and supervise until SIGINT.
probe
    Route queries through a :class:`~repro.cluster.router.ShardRouter`
    built from a topology file: single probes, best moves, stats, or a
    verified random sweep.
"""

from __future__ import annotations

import sys
from pathlib import Path

__all__ = ["add_arguments", "run"]


def add_arguments(parser) -> None:
    """Attach the ``split | up | probe`` subcommands to the ``cluster``
    subparser."""
    sub = parser.add_subparsers(dest="cluster_command", required=True)

    split = sub.add_parser(
        "split",
        help="partition a store into per-shard paged files + manifest",
    )
    split.add_argument("store", help="source archive (.npz) or paged store")
    split.add_argument("out_dir", help="cluster directory to create")
    split.add_argument("--shards", type=int, required=True,
                       help="number of shards to split into")
    split.add_argument("--partition", default="cyclic",
                       choices=["block", "cyclic", "hash"])
    split.add_argument("--block-positions", type=int, default=None,
                       help="positions per compressed block (default 4096)")
    split.add_argument("--level", type=int, default=6,
                       help="zlib compression level (1-9)")
    split.add_argument("--codec", default="zlib",
                       choices=["zlib", "raw", "packed", "packed+zlib"],
                       help="per-block encoding for every shard file "
                            "(propagated to the manifest)")

    up = sub.add_parser(
        "up", help="launch shard servers and write the topology file"
    )
    up.add_argument("cluster_dir", help="directory written by cluster split")
    up.add_argument("--replicas", type=int, default=0,
                    help="extra servers per shard for failover")
    up.add_argument("--host", default="127.0.0.1")
    up.add_argument("--cache-kb", type=int, default=65536,
                    help="block cache budget in KiB (paged stores)")
    up.add_argument("--topology-out", default=None, metavar="PATH",
                    help="write the endpoint map here "
                         "(default: CLUSTER_DIR/topology.json)")
    up.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write the topology path here once all shards are serving "
             "(for scripts/CI)",
    )
    up.add_argument(
        "--protocol", choices=("json", "binary"), default="json",
        help="wire protocol the shard servers speak (docs/CLUSTER.md)",
    )
    up.add_argument(
        "--auto-restart", action="store_true",
        help="supervise the shard servers: detect dead or unresponsive "
             "endpoints and respawn them on their original ports "
             "(docs/CLUSTER.md, Failure model & recovery)",
    )
    up.add_argument(
        "--max-restarts", type=int, default=5, metavar="N",
        help="flap detector: give up on an endpoint after N restarts "
             "within a minute (with --auto-restart)",
    )
    up.add_argument(
        "--health-interval", type=float, default=1.0, metavar="SECONDS",
        help="seconds between supervisor liveness passes "
             "(with --auto-restart)",
    )
    up.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="per-server overload budget: past N concurrently executing "
             "requests a server sheds load with ok:false "
             "reason=overloaded instead of queueing",
    )
    up.add_argument(
        "--inject-fault", action="append", default=None, metavar="SPEC",
        help="deterministic fault injection on shard primaries, e.g. "
             "crash-shard:shard=0,after=100 or latency:ms=50,every=10 "
             "(repeatable; docs/RESILIENCE.md)",
    )
    up.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write supervisor metrics as JSON here on shutdown",
    )

    probe = sub.add_parser("probe", help="query a running cluster")
    probe.add_argument("--topology", required=True, metavar="PATH",
                       help="topology file written by cluster up")
    probe.add_argument("--db", default=None, help="database id to probe")
    probe.add_argument("--index", type=int, default=None,
                       help="position index to probe (with --db)")
    probe.add_argument("--board", default=None,
                       help="12 comma-separated pit counts: ask the "
                            "cluster for the best move")
    probe.add_argument("--stats", action="store_true",
                       help="print per-shard endpoint statistics")
    probe.add_argument(
        "--transport", choices=("json", "binary"), default="json",
        help="shard transport: json = one blocking client per shard, "
             "binary = pipelined clients sharing one event loop "
             "(docs/CLUSTER.md)",
    )
    probe.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-call wall-clock budget shared across failover "
             "attempts; the call fails loudly when it runs out",
    )
    probe.add_argument(
        "--hedge-after-ms", type=float, default=None, metavar="MS",
        help="hedged reads: mirror a batched sub-call to the next "
             "replica when the primary is slower than this",
    )


def _cmd_split(args) -> int:
    from ..analysis.report import format_bytes
    from .manifest import split_store

    from ..serve.pagedstore import DEFAULT_BLOCK_POSITIONS

    try:
        summary = split_store(
            args.store,
            args.out_dir,
            n_shards=args.shards,
            partition=args.partition,
            block_positions=args.block_positions or DEFAULT_BLOCK_POSITIONS,
            level=args.level,
            codec=args.codec,
        )
    except (OSError, KeyError, ValueError) as exc:
        print(f"cannot split {args.store}: {exc}", file=sys.stderr)
        return 2
    print(
        f"split {summary['databases']} databases "
        f"({summary['positions']:,} positions) into {summary['shards']} "
        f"{summary['partition']}-partitioned shards "
        f"(codec {summary['codec']})"
    )
    for name, nbytes in zip(summary["shard_files"], summary["shard_bytes"]):
        print(f"  {name}: {format_bytes(nbytes)}")
    print(f"manifest written to {summary['manifest']}")
    return 0


def _cmd_up(args) -> int:
    import json

    from ..obs import MetricsRegistry
    from ..resilience.checkpoint import atomic_write_text
    from ..resilience.faults import FaultSpecError
    from .launch import ClusterLaunchError, launch_cluster

    try:
        supervisor = launch_cluster(
            args.cluster_dir,
            replicas=args.replicas,
            host=args.host,
            cache_kb=args.cache_kb,
            protocol=args.protocol,
            fault_specs=args.inject_fault,
            max_inflight=args.max_inflight,
        )
    except (ClusterLaunchError, FaultSpecError, ValueError, OSError) as exc:
        print(f"cluster failed to start: {exc}", file=sys.stderr)
        return 1
    topology = supervisor.topology
    out = Path(args.topology_out) if args.topology_out else Path(args.cluster_dir)
    topology_path = topology.save(out)
    for shard, group in enumerate(topology.endpoints):
        roles = ["primary"] + [f"replica{i}" for i in range(1, len(group))]
        listing = ", ".join(
            f"{role} {e.host}:{e.port} (pid {e.pid})"
            for role, e in zip(roles, group)
        )
        print(f"shard {shard}: {listing}")
    print(f"topology written to {topology_path}", flush=True)
    if args.ready_file:
        # Atomic so a watcher never reads a half-written path.
        atomic_write_text(Path(args.ready_file), f"{topology_path}\n")
    registry = MetricsRegistry()
    monitor = None
    if args.auto_restart:
        from .supervise import ClusterMonitor, RestartPolicy

        def report(kind, shard, endpoint, detail):
            print(f"supervisor: {kind} shard {shard} "
                  f"endpoint {endpoint}: {detail}", flush=True)

        monitor = ClusterMonitor(
            supervisor,
            policy=RestartPolicy(max_restarts=args.max_restarts),
            health_interval=args.health_interval,
            metrics=registry,
            topology_path=topology_path,
            on_event=report,
        ).start()
        print(f"supervising {topology.n_endpoints} endpoints "
              f"(health interval {args.health_interval}s, "
              f"max {args.max_restarts} restarts/min)", flush=True)
    try:
        while True:
            import time

            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    if monitor is not None:
        monitor.stop()
    supervisor.shutdown()
    if args.metrics_out:
        atomic_write_text(
            Path(args.metrics_out),
            json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n",
        )
    print("cluster stopped")
    return 0


def _cmd_probe(args) -> int:
    from ..db.store import DatabaseSet
    from ..serve.client import ProbeError
    from .router import ShardRouter

    asked = args.stats or args.board is not None or args.db is not None
    if not asked:
        print("nothing to do: pass --db/--index, --board, or --stats",
              file=sys.stderr)
        return 2
    if (args.db is None) != (args.index is None):
        print("--db and --index go together", file=sys.stderr)
        return 2
    try:
        with ShardRouter.from_topology(
            args.topology, transport=args.transport,
            deadline=args.deadline, hedge_after_ms=args.hedge_after_ms,
        ) as router:
            if args.db is not None:
                db_id = DatabaseSet._parse_id(args.db)
                value = router.probe(db_id, args.index)
                print(f"db {db_id} index {args.index}: value {value:+d}")
            if args.board is not None:
                board = [int(x) for x in args.board.split(",")]
                if len(board) != 12:
                    print("board must have 12 pit counts", file=sys.stderr)
                    return 2
                value, moves = router.best_moves(board)
                print(f"value for the mover: {value:+d}")
                for move in moves:
                    print(f"  optimal: pit {move.pit} "
                          f"(captures {move.captures})")
            if args.stats:
                stats = router.stats()
                print(f"shards = {stats['shards']}, "
                      f"endpoints = {stats['endpoints']}")
                for shard, entry in enumerate(stats["per_shard"]):
                    line = ", ".join(
                        f"{key}={entry[key]}" for key in sorted(entry)
                    )
                    print(f"  shard {shard}: {line}")
    except (ProbeError, ValueError, OSError, IndexError, KeyError) as exc:
        print(f"cluster probe failed: {exc}", file=sys.stderr)
        return 1
    return 0


def run(args) -> int:
    """Dispatch a parsed ``repro cluster`` invocation."""
    return {
        "split": _cmd_split,
        "up": _cmd_up,
        "probe": _cmd_probe,
    }[args.cluster_command](args)
