"""The shard manifest: how one database set was split across shards.

``split_store`` partitions every database of a source store (a
``DatabaseSet`` archive or a paged store) through one
:class:`~repro.core.partition.Partition` per database — same kind and
shard count everywhere, sized to each database — and writes one
*ordinary* paged file per shard holding only the positions that shard
owns, stored densely in local-slot order.  A shard server is therefore
just ``repro serve shard_00.pgdb``: the cluster layer needs no new
storage format and no shard-aware server.

The :class:`ShardManifest` (``cluster.json``, schema
``repro/cluster-manifest/v1``) records the split: game, rules, shard
file names, and the serialized partition spec per database
(:meth:`~repro.core.partition.Partition.spec`).  The router rebuilds
the exact bijection from the manifest, so global position ``(db, i)``
deterministically maps to ``(shard, local slot)`` on both sides of the
split — the whole correctness argument of scatter-gather routing rests
on this file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.partition import Partition, make_partition, partition_from_spec
from ..db.store import DatabaseSet
from ..serve.pagedstore import DEFAULT_BLOCK_POSITIONS, PagedStore, write_paged

__all__ = ["SCHEMA", "MANIFEST_NAME", "ShardManifest", "split_store"]

SCHEMA = "repro/cluster-manifest/v1"

#: File name of the manifest inside a cluster directory.
MANIFEST_NAME = "cluster.json"


def _shard_file(rank: int) -> str:
    return f"shard_{rank:02d}.pgdb"


@dataclass
class ShardManifest:
    """Decoded ``cluster.json``: the contract between split and route.

    ``databases`` maps database id to its serialized partition spec;
    ``partition_for`` rebuilds (and memoizes) the live
    :class:`~repro.core.partition.Partition` objects on demand.
    """

    game: str
    rules: str
    partition: str
    n_shards: int
    block_positions: int
    databases: dict
    shard_files: list
    #: Per-block codec of every shard file (manifests written before the
    #: field existed are zlib by construction).
    codec: str = "zlib"
    _partitions: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------- routing

    def ids(self) -> list:
        """Database ids of the split store, sorted."""
        return sorted(self.databases)

    def __contains__(self, db_id) -> bool:
        return db_id in self.databases

    def positions(self, db_id) -> int:
        """Global position count of one database."""
        return int(self._spec(db_id)["size"])

    @property
    def total_positions(self) -> int:
        """Global position count across all databases."""
        return sum(self.positions(i) for i in self.ids())

    def partition_for(self, db_id) -> Partition:
        """The (memoized) partition of one database."""
        if db_id not in self._partitions:
            self._partitions[db_id] = partition_from_spec(self._spec(db_id))
        return self._partitions[db_id]

    def _spec(self, db_id) -> dict:
        try:
            return self.databases[db_id]
        except KeyError:
            raise KeyError(
                f"database {db_id!r} not present; have {self.ids()}"
            ) from None

    # ------------------------------------------------------------------ io

    def save(self, directory) -> Path:
        """Write ``cluster.json`` atomically into ``directory``."""
        from ..resilience.checkpoint import atomic_write_text

        path = Path(directory) / MANIFEST_NAME
        payload = json.dumps(
            {
                "schema": SCHEMA,
                "game": self.game,
                "rules": self.rules,
                "partition": self.partition,
                "n_shards": self.n_shards,
                "block_positions": self.block_positions,
                "codec": self.codec,
                "databases": {
                    str(db_id): spec for db_id, spec in self.databases.items()
                },
                "shard_files": list(self.shard_files),
            },
            indent=2,
            sort_keys=True,
        )
        atomic_write_text(path, payload + "\n")
        return path

    @classmethod
    def load(cls, directory) -> "ShardManifest":
        """Read and validate a manifest from a cluster directory (or the
        manifest path itself)."""
        path = Path(directory)
        if path.is_dir():
            path = path / MANIFEST_NAME
        try:
            raw = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"cannot read shard manifest {path}: {exc}") from exc
        if raw.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported shard-manifest schema {raw.get('schema')!r}"
            )
        n_shards = int(raw["n_shards"])
        shard_files = list(raw["shard_files"])
        if n_shards < 1 or len(shard_files) != n_shards:
            raise ValueError(
                f"manifest lists {len(shard_files)} shard files for "
                f"{n_shards} shards"
            )
        databases = {
            DatabaseSet._parse_id(key): dict(spec)
            for key, spec in raw["databases"].items()
        }
        for db_id, spec in databases.items():
            if int(spec.get("n_parts", -1)) != n_shards:
                raise ValueError(
                    f"db {db_id!r} partition spec disagrees with the "
                    f"manifest shard count ({spec!r} vs {n_shards})"
                )
        return cls(
            game=raw["game"],
            rules=raw["rules"],
            partition=raw["partition"],
            n_shards=n_shards,
            block_positions=int(raw["block_positions"]),
            databases=databases,
            shard_files=shard_files,
            codec=raw.get("codec", "zlib"),
        )


def _load_source(source) -> DatabaseSet:
    """A :class:`DatabaseSet` from an archive path, a paged-store path,
    or a live ``DatabaseSet`` — whatever the caller has."""
    if isinstance(source, DatabaseSet):
        return source
    path = Path(source)
    if path.suffix == ".npz":
        return DatabaseSet.load(path)
    with PagedStore(path) as store:
        values = {db_id: store.read_all(db_id) for db_id in store.ids()}
        return DatabaseSet(
            game_name=store.game_name, values=values, rules=store.rules
        )


def split_store(
    source,
    out_dir,
    n_shards: int,
    partition: str = "cyclic",
    block_positions: int = DEFAULT_BLOCK_POSITIONS,
    level: int = 6,
    codec: str = "zlib",
) -> dict:
    """Split a store into ``n_shards`` per-shard paged files + manifest.

    Each database is partitioned independently (``make_partition(kind,
    positions, n_shards)``); shard ``r`` receives the values at
    ``partition.local_indices(r)``, written densely so the shard file is
    a self-contained paged store of local slots.  Every shard file lists
    every database id (possibly with zero positions) so shard servers
    present a uniform catalog.

    Returns a summary dict (shards, databases, positions, bytes per
    shard) and writes ``cluster.json`` atomically last, so a directory
    with a manifest is always a complete split.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    dbs = _load_source(source)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    specs: dict = {}
    parts: dict = {}
    for db_id in dbs.ids():
        part = make_partition(partition, int(dbs[db_id].shape[0]), n_shards)
        parts[db_id] = part
        specs[db_id] = part.spec()
    shard_files = [_shard_file(r) for r in range(n_shards)]
    shard_bytes = []
    for rank, name in enumerate(shard_files):
        local_values = {
            db_id: np.ascontiguousarray(
                dbs[db_id][parts[db_id].local_indices(rank)]
            )
            for db_id in dbs.ids()
        }
        shard_set = DatabaseSet(
            game_name=dbs.game_name, values=local_values, rules=dbs.rules
        )
        summary = write_paged(
            shard_set,
            out_dir / name,
            block_positions=block_positions,
            level=level,
            codec=codec,
        )
        shard_bytes.append(int(summary["file_bytes"]))
    manifest = ShardManifest(
        game=dbs.game_name,
        rules=dbs.rules,
        partition=partition,
        n_shards=n_shards,
        block_positions=block_positions,
        databases=specs,
        shard_files=shard_files,
        codec=codec,
    )
    manifest.save(out_dir)
    return {
        "shards": n_shards,
        "databases": len(specs),
        "positions": dbs.total_positions,
        "partition": partition,
        "codec": codec,
        "shard_files": shard_files,
        "shard_bytes": shard_bytes,
        "manifest": str(out_dir / MANIFEST_NAME),
    }
