"""Performance analysis: calibration, analytic model, reporting."""

from .calibration import (
    CLUSTER_1995,
    PAPER_HEADLINE,
    Cluster,
    extrapolate_ops,
    headline_table,
    sequential_seconds,
)
from .model import ModelInput, ModelPrediction, predict
from .scaling import ScalingPoint, isoefficiency, strong_scaling_limit
from .report import Table, format_bytes, format_seconds, series

__all__ = [
    "Cluster",
    "CLUSTER_1995",
    "PAPER_HEADLINE",
    "sequential_seconds",
    "extrapolate_ops",
    "headline_table",
    "ModelInput",
    "ModelPrediction",
    "predict",
    "ScalingPoint",
    "isoefficiency",
    "strong_scaling_limit",
    "Table",
    "format_seconds",
    "format_bytes",
    "series",
]
