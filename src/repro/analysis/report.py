"""ASCII table/series rendering for the benchmark harness.

Every benchmark prints through these helpers so EXPERIMENTS.md and the
bench output stay visually consistent (fixed-width tables, one row per
configuration, a ``#`` comment header naming the reproduced exhibit).
"""

from __future__ import annotations

__all__ = ["Table", "format_seconds", "format_bytes", "series"]


def format_seconds(s: float) -> str:
    """Human scale: µs/ms/s/min/h."""
    if s < 1e-3:
        return f"{s * 1e6:.1f}µs"
    if s < 1.0:
        return f"{s * 1e3:.1f}ms"
    if s < 120:
        return f"{s:.1f}s"
    if s < 7200:
        return f"{s / 60:.1f}min"
    return f"{s / 3600:.1f}h"


def format_bytes(b: float) -> str:
    """Human scale: B/KB/MB/GB (binary)."""
    for unit in ("B", "KB", "MB", "GB"):
        if abs(b) < 1024:
            return f"{b:.1f}{unit}"
        b /= 1024
    return f"{b:.1f}TB"


class Table:
    """Fixed-width table with a title, printed row by row."""

    def __init__(self, title: str, columns: list[str], widths: list[int] | None = None):
        self.title = title
        self.columns = columns
        self.widths = widths or [max(12, len(c) + 2) for c in columns]
        self.rows: list[list[str]] = []

    def add(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        head = "".join(c.rjust(w) for c, w in zip(self.columns, self.widths))
        rule = "-" * len(head)
        body = [
            "".join(c.rjust(w) for c, w in zip(row, self.widths))
            for row in self.rows
        ]
        return "\n".join([f"# {self.title}", head, rule, *body])

    def show(self) -> None:
        print(self.render())
        print()


def series(title: str, xs, ys, x_label: str = "x", y_label: str = "y") -> str:
    """A figure rendered as an aligned two-column series plus a coarse
    ASCII bar chart (benchmarks run in terminals, not notebooks)."""
    lines = [f"# {title}", f"{x_label:>12} {y_label:>14}  "]
    finite = [y for y in ys if y == y]
    top = max(finite) if finite else 1.0
    for x, y in zip(xs, ys):
        bar = "#" * int(round(40 * (y / top))) if top > 0 else ""
        lines.append(f"{x!s:>12} {y:14.3f}  {bar}")
    return "\n".join(lines)
