"""Calibration of the simulated cluster against the paper's headline.

The abstract gives three absolute anchors:

* the large (13-stone) awari database took **~40 hours on one machine**;
* the same database took **50 minutes on 64 processors** (speedup 48);
* an even larger database would have needed **> 600 MB** of memory on a
  uniprocessor.

:data:`CLUSTER_1995` fixes the hardware constants (10 Mbit/s shared
Ethernet, ~20 MIPS workstations, millisecond-class message software
overhead — see :mod:`repro.simnet.costs` for the per-operation
derivations).  The functions here convert measured operation counts into
simulated seconds with those constants and extrapolate small-database
measurements to the paper's 13-stone workload, so EXPERIMENTS.md can
report paper-vs-model side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simnet.costs import DEFAULT_COSTS, CostModel
from ..simnet.ethernet import EthernetConfig

__all__ = [
    "Cluster",
    "CLUSTER_1995",
    "sequential_seconds",
    "extrapolate_ops",
    "PAPER_HEADLINE",
]


@dataclass(frozen=True)
class Cluster:
    """A named hardware configuration."""

    name: str
    costs: CostModel
    ethernet: EthernetConfig


#: The reconstruction of the paper's Ethernet-based processor pool.
CLUSTER_1995 = Cluster(
    name="1995 Ethernet pool",
    costs=DEFAULT_COSTS,
    ethernet=EthernetConfig(),
)

#: Headline numbers quoted in the abstract.
PAPER_HEADLINE = {
    "sequential_hours": 40.0,
    "parallel_minutes": 50.0,
    "processors": 64,
    "speedup": 48.0,
    "memory_wall_mbytes": 600.0,
}

#: The abstract's second claim: "an even larger database (computed in 20
#: hours) would have required over 600 MByte of internal memory on a
#: uniprocessor and would compute for many weeks."  Under the calibrated
#: model this matches the 19-stone database (see EXPERIMENTS.md).
PAPER_SECOND_HEADLINE = {
    "parallel_hours": 20.0,
    "memory_wall_mbytes": 600.0,
    "sequential": "many weeks",
    "reconstructed_stones": 19,
}


def sequential_seconds(
    size: int,
    thresholds: int,
    notifications: int,
    costs: CostModel = DEFAULT_COSTS,
) -> float:
    """Simulated uniprocessor time for one database.

    This is exactly the CPU work the parallel workers charge, summed —
    the fair baseline for speedup (same cost constants, no messaging).
    """
    return (
        size * costs.scan_position
        + thresholds
        * size
        * (costs.threshold_init_position + costs.value_assemble_position)
        + notifications * (costs.update_generate + costs.update_apply)
    )


def extrapolate_ops(sizes, notifications, target_size: int, target_bound: int):
    """Predict (notifications) for a larger database by fitting the
    per-position notification rate.

    Awari's internal out-degree is nearly constant across stone counts,
    so ``notifications ≈ rate × size × bound``; the rate is fit on the
    measured databases (least squares through the origin).
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    notifications = np.asarray(notifications, dtype=np.float64)
    if sizes.size == 0:
        raise ValueError("need at least one measured database")
    rate = float((notifications * sizes).sum() / (sizes * sizes).sum())
    return rate * target_size, rate


def headline_table(measured_reports, costs: CostModel = DEFAULT_COSTS):
    """Extrapolate measured sequential reports to the 13-stone headline.

    ``measured_reports`` are :class:`~repro.core.sequential.DatabaseReport`
    objects for awari databases.  Returns a dict with the model's 13-stone
    sequential hours next to the paper's 40.
    """
    from ..games.awari_index import AwariIndexer

    sizes = [r.size * r.thresholds for r in measured_reports if r.thresholds]
    notifs = [r.parent_notifications for r in measured_reports if r.thresholds]
    target_size = AwariIndexer(13).count
    pred_notifs, rate = extrapolate_ops(sizes, notifs, target_size * 13, 13)
    seconds = sequential_seconds(target_size, 13, pred_notifs, costs)
    return {
        "target_positions": target_size,
        "predicted_notifications": pred_notifs,
        "notification_rate": rate,
        "sequential_hours_model": seconds / 3600.0,
        "sequential_hours_paper": PAPER_HEADLINE["sequential_hours"],
    }


def second_headline_table(measured_reports, costs: CostModel = DEFAULT_COSTS):
    """Model the abstract's "even larger database" claim.

    Reconstructed as the 19-stone database: predicts the 64-processor
    compute time, the sequential time ("many weeks") and the uniprocessor
    memory footprint (> 600 MB) using the fitted notification rate and
    the 12-byte/position construction layout.
    """
    from ..core.parallel.worker import RAWorker
    from ..games.awari_index import AwariIndexer

    stones = PAPER_SECOND_HEADLINE["reconstructed_stones"]
    sizes = [r.size * r.thresholds for r in measured_reports if r.thresholds]
    notifs = [r.parent_notifications for r in measured_reports if r.thresholds]
    top = AwariIndexer(stones).count
    pred_notifs, _ = extrapolate_ops(sizes, notifs, top * stones, stones)
    seq_seconds = sequential_seconds(top, stones, pred_notifs, costs)
    lower = sum(AwariIndexer(k).count for k in range(stones))
    uni_bytes = RAWorker.MODELED_BYTES_PER_POSITION * top + lower
    return {
        "stones": stones,
        "positions": top,
        "sequential_weeks_model": seq_seconds / (7 * 24 * 3600.0),
        "parallel_hours_model": seq_seconds / 64 / 3600.0,
        "parallel_hours_paper": PAPER_SECOND_HEADLINE["parallel_hours"],
        "memory_mbytes_model": uni_bytes / 1e6,
        "memory_mbytes_paper": PAPER_SECOND_HEADLINE["memory_wall_mbytes"],
    }
