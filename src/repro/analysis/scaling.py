"""Scalability analysis: isoefficiency and strong-scaling limits.

Classic HPC treatment of the parallel algorithm, built on the analytic
model:

* :func:`strong_scaling_limit` — the processor count where adding more
  machines stops paying (efficiency dips below a floor) for a fixed
  database, and the asymptotic speedup cap imposed by the shared wire.
* :func:`isoefficiency` — how fast the database must grow with P to hold
  efficiency constant: the paper's implicit answer for why the *large*
  database was the one worth 64 machines.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import ModelInput, predict

__all__ = ["ScalingPoint", "strong_scaling_limit", "isoefficiency"]


@dataclass
class ScalingPoint:
    """One (processors, speedup, efficiency) sample of a scaling curve."""

    procs: int
    speedup: float
    efficiency: float


def strong_scaling_limit(
    base: ModelInput,
    efficiency_floor: float = 0.5,
    max_procs: int = 4096,
) -> tuple[list[ScalingPoint], int]:
    """Sweep P for a fixed workload; return the curve and the largest P
    whose efficiency still clears ``efficiency_floor``."""
    from dataclasses import replace

    points = []
    best_p = 1
    p = 1
    while p <= max_procs:
        pred = predict(replace(base, n_procs=p))
        eff = pred.speedup / p
        points.append(ScalingPoint(procs=p, speedup=pred.speedup, efficiency=eff))
        if eff >= efficiency_floor:
            best_p = p
        p *= 2
    return points, best_p


def isoefficiency(
    base: ModelInput,
    target_efficiency: float = 0.75,
    procs: tuple = (4, 8, 16, 32, 64, 128),
    growth: float = 1.3,
    max_doublings: int = 60,
) -> list[tuple[int, int]]:
    """For each processor count, the smallest database size (in
    positions, scaling notifications along) reaching the target
    efficiency.  Returns ``[(procs, required_size), ...]``."""
    from dataclasses import replace

    out = []
    rate = base.notifications / base.size if base.size else 0.0
    for p in procs:
        size = max(base.size // 64, 1)
        for _ in range(max_doublings):
            candidate = replace(
                base,
                size=int(size),
                notifications=rate * size,
                n_procs=p,
            )
            pred = predict(candidate)
            if pred.speedup / p >= target_efficiency:
                break
            size = int(size * growth) + 1
        out.append((p, int(size)))
    return out
