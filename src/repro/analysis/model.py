"""Analytic performance model of the parallel algorithm.

A closed-form LogP-style prediction of the parallel runtime, validated
against the discrete-event measurement (Table 5).  It captures the three
regimes of the paper's evaluation:

* **computation-bound** — perfect speedup region (T_comp / P);
* **overhead-bound** — per-message software cost dominates when
  combining is off (the paper's "enormous communication overhead");
* **wire-bound** — the shared 10 Mbit/s segment serializes all traffic,
  capping speedup at high P regardless of CPU count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simnet.costs import DEFAULT_COSTS, CostModel
from ..simnet.ethernet import EthernetConfig
from .calibration import sequential_seconds

__all__ = ["ModelInput", "ModelPrediction", "predict"]


@dataclass(frozen=True)
class ModelInput:
    """Workload and machine description for one database run."""

    size: int
    thresholds: int
    notifications: int
    n_procs: int
    combining_capacity: int = 256
    remote_fraction: float | None = None  # default (P-1)/P
    costs: CostModel = DEFAULT_COSTS
    ethernet: EthernetConfig = EthernetConfig()
    # Fraction of the ideal combining factor actually achieved (buffers
    # are force-flushed around frontier waves and phase ends).
    combining_efficiency: float = 0.7
    #: Number of dependency waves the propagation takes (the sequential
    #: kernel's rounds per threshold).  Buffers drain at every wave
    #: boundary, so the achievable combining factor is roughly the
    #: per-pair update volume *per wave*.  ``None`` disables the limit.
    waves: float | None = None


@dataclass
class ModelPrediction:
    """Per-term breakdown of the predicted parallel runtime."""

    t_sequential: float
    t_compute: float
    t_message_cpu: float
    t_wire: float
    t_parallel: float
    packets: float
    combining_factor: float

    @property
    def speedup(self) -> float:
        return self.t_sequential / self.t_parallel if self.t_parallel else 0.0

    @property
    def efficiency(self) -> float:
        return self.speedup


def predict(m: ModelInput) -> ModelPrediction:
    """Predict runtime: max of the CPU path and the serialized wire path.

    The CPU path is per-processor: compute + send/receive overhead +
    marshalling.  The wire path is *global*: every frame crosses the one
    shared segment.
    """
    c = m.costs
    p = m.n_procs
    t_seq = sequential_seconds(m.size, m.thresholds, m.notifications, c)
    t_comp = t_seq / p

    remote = m.remote_fraction if m.remote_fraction is not None else (p - 1) / p
    updates_remote = m.notifications * remote
    # Updates per (source, destination) pair bound the achievable factor;
    # with a wave count given, only one wave's volume combines at a time.
    pair_volume = updates_remote / (p * max(p - 1, 1))
    if m.waves:
        pair_volume /= m.waves
    factor = min(m.combining_capacity, max(1.0, pair_volume * m.combining_efficiency))
    packets = updates_remote / factor if factor else 0.0

    from ..core.combining import UPDATE_BYTES

    payload_bytes = updates_remote * UPDATE_BYTES
    t_msg_cpu = (
        packets * (c.msg_overhead_send + c.msg_overhead_recv)
        + payload_bytes * c.marshal_per_byte
    ) / p

    # Wire time: frames are MTU-sized when combining, minimum-sized when
    # not; under load every frame pays the CSMA/CD contention slots.
    eth = m.ethernet
    per_packet_payload = min(factor * UPDATE_BYTES, eth.mtu_bytes)
    frames_per_packet = max(1.0, (factor * UPDATE_BYTES) / eth.mtu_bytes)
    per_frame = (
        eth.frame_time(int(per_packet_payload)) + eth.contention_slot_penalty_s
    )
    t_wire = packets * frames_per_packet * per_frame

    t_par = max(t_comp + t_msg_cpu, t_wire)
    return ModelPrediction(
        t_sequential=t_seq,
        t_compute=t_comp,
        t_message_cpu=t_msg_cpu,
        t_wire=t_wire,
        t_parallel=t_par,
        packets=packets,
        combining_factor=factor,
    )
