"""Command-line interface: ``python -m repro <command>``.

Commands
--------
solve
    Build endgame databases — awari (with rule variants) or kalah-nt —
    sequentially or on the simulated cluster, optionally saving them to
    an ``.npz`` archive.
stats
    Print Table-1-style statistics for a database archive.
verify
    Run the Bellman and replay certificates on an archive.
query
    Evaluate a position: exact value and the optimal move(s).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis.report import Table, format_bytes, format_seconds
from .core.parallel.driver import ParallelConfig
from .core.verify import check_bellman, replay_certificate
from .db.query import best_moves
from .db.stats import set_stats
from .db.store import DatabaseSet

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel retrograde analysis (Bal & Allis, SC '95).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="build endgame databases")
    solve.add_argument("--stones", type=int, required=True)
    solve.add_argument("--game", default="awari",
                       help="awari | awari-slam-allowed | awari-no-feed | kalah")
    solve.add_argument("--procs", type=int, default=1)
    solve.add_argument("--combine", type=int, default=256,
                       help="combining buffer capacity in updates (1 = off)")
    solve.add_argument("--partition", default="cyclic",
                       choices=["block", "cyclic", "hash"])
    solve.add_argument("--mode", default="unmove-cached",
                       choices=["unmove", "unmove-cached", "csr"])
    solve.add_argument("--out", default=None, help="save archive here (.npz)")

    stats = sub.add_parser("stats", help="database statistics (Table 1)")
    stats.add_argument("archive")

    verify = sub.add_parser("verify", help="Bellman + replay certificates")
    verify.add_argument("archive")
    verify.add_argument("--samples", type=int, default=30)

    query = sub.add_parser("query", help="evaluate one position")
    query.add_argument("archive")
    query.add_argument(
        "--board",
        required=True,
        help="12 comma-separated pit counts, mover's pits first",
    )

    model = sub.add_parser(
        "model", help="analytic runtime prediction (no simulation)"
    )
    model.add_argument("--stones", type=int, default=13)
    model.add_argument("--procs", type=int, default=64)
    model.add_argument("--combine", type=int, default=256)
    return parser


def _cmd_solve(args) -> int:
    from .core.parallel.driver import ParallelSolver
    from .core.sequential import SequentialSolver
    from .games.registry import capture_game

    game = capture_game(args.game)
    if args.procs > 1:
        config = ParallelConfig(
            n_procs=args.procs,
            combining_capacity=args.combine,
            partition=args.partition,
            predecessor_mode=args.mode,
        )
        values, stats = ParallelSolver(game, config).solve(args.stones)
        total = stats[-1]
        print(
            f"solved {args.game} up to {args.stones} stones on {args.procs} "
            f"simulated processors"
        )
        print(
            f"  largest database: {format_seconds(total.makespan_seconds)} "
            f"simulated, {total.packets_sent} packets, combining factor "
            f"{total.combining_factor:.1f}"
        )
        rules = game.rules.describe() if hasattr(game, "rules") else ""
        dbs = DatabaseSet(game_name=game.name, values=values, rules=rules)
    else:
        solver = SequentialSolver(game)
        values, report = solver.solve(args.stones)
        rules = game.rules.describe() if hasattr(game, "rules") else ""
        dbs = DatabaseSet(game_name=game.name, values=values, rules=rules)
        print(
            f"solved {args.game} up to {args.stones} stones sequentially "
            f"({dbs.total_positions:,} positions, "
            f"{report.wall_seconds:.1f}s wall)"
        )
    if args.out:
        dbs.save(args.out)
        print(f"saved to {args.out} ({format_bytes(dbs.memory_bytes())})")
    return 0


def _cmd_stats(args) -> int:
    dbs = DatabaseSet.load(args.archive)
    table = Table(
        f"database statistics — {dbs.game_name} ({dbs.rules})",
        ["db", "positions", "wins", "draws", "losses", "win%", "draw%"],
    )
    for st in set_stats(dbs):
        table.add(
            st.db_id,
            f"{st.positions:,}",
            f"{st.wins:,}",
            f"{st.draws:,}",
            f"{st.losses:,}",
            f"{100 * st.win_fraction:.2f}",
            f"{100 * st.draw_fraction:.2f}",
        )
    table.show()
    return 0


def _cmd_verify(args) -> int:
    from .games.registry import capture_game_for

    dbs = DatabaseSet.load(args.archive)
    game = capture_game_for(dbs)
    failures = 0
    for db_id in dbs.ids():
        report = check_bellman(game, db_id, dbs.values)
        status = "ok" if report.ok else f"{report.violations} VIOLATIONS"
        print(f"db {db_id}: bellman {status} ({report.checked:,} positions)")
        failures += report.violations
    if failures:
        print("skipping replay: bellman check already failed")
        return 1
    top = max(dbs.ids())
    if top >= 1:
        try:
            replayed = replay_certificate(game, dbs, top, samples=args.samples)
        except AssertionError as exc:
            print(f"replay FAILED: {exc}")
            return 1
        print(f"db {top}: replayed {replayed} optimal lines, all matched")
    return 0


def _cmd_query(args) -> int:
    from .games.registry import capture_game_for

    dbs = DatabaseSet.load(args.archive)
    game = capture_game_for(dbs)
    board = np.array([int(x) for x in args.board.split(",")], dtype=np.int16)
    if board.shape != (12,):
        print("board must have 12 pit counts", file=sys.stderr)
        return 2
    if int(board.sum()) not in dbs:
        print(
            f"no database for {int(board.sum())} stones in this archive",
            file=sys.stderr,
        )
        return 2
    print(game.engine.board_to_string(board))
    value, moves = best_moves(game, dbs, board)
    print(f"value for the mover: {value:+d}")
    if not moves:
        print("terminal position (no legal move)")
    for m in moves:
        print(f"  optimal: pit {m.pit} (captures {m.captures})")
    return 0


def _cmd_model(args) -> int:
    from .analysis.calibration import sequential_seconds
    from .analysis.model import ModelInput, predict
    from .games.awari_index import AwariIndexer

    size = AwariIndexer(args.stones).count
    # Notification rate and wave count fitted on the solved benchmark
    # databases (see analysis.calibration); constants below match the
    # measured awari averages.
    notifications = 1.3 * size * args.stones
    waves = 55.0
    pred = predict(
        ModelInput(
            size=size,
            thresholds=args.stones,
            notifications=notifications,
            n_procs=args.procs,
            combining_capacity=args.combine,
            waves=waves,
        )
    )
    print(
        f"awari {args.stones}-stone database "
        f"({size:,} positions, modeled 1995 cluster):"
    )
    print(f"  sequential       : {format_seconds(pred.t_sequential)}")
    print(f"  on {args.procs:>3} processors: {format_seconds(pred.t_parallel)} "
          f"(speedup {pred.speedup:.1f})")
    print(f"  compute/P        : {format_seconds(pred.t_compute)}")
    print(f"  message CPU /P   : {format_seconds(pred.t_message_cpu)}")
    print(f"  shared wire      : {format_seconds(pred.t_wire)}")
    print(f"  combining factor : {pred.combining_factor:.1f}")
    return 0


def main(argv=None) -> int:
    """Parse arguments and dispatch to the subcommand handlers."""
    args = _build_parser().parse_args(argv)
    handler = {
        "solve": _cmd_solve,
        "stats": _cmd_stats,
        "verify": _cmd_verify,
        "query": _cmd_query,
        "model": _cmd_model,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
