"""Command-line interface: ``python -m repro <command>``.

Commands
--------
solve
    Build endgame databases — awari (with rule variants) or kalah-nt —
    sequentially or on the simulated cluster, optionally saving them to
    an ``.npz`` archive.
stats
    Print Table-1-style statistics for a database archive.
verify
    Run the Bellman and replay certificates on an archive.
query
    Evaluate a position: exact value and the optimal move(s).
metrics
    Render the run manifest written by ``solve --metrics-out``.
page
    Convert an ``.npz`` archive to the paged serving format.
serve
    Serve a database (paged or ``.npz``) over TCP.
probe
    Query a running probe server (value, best move, stats).
cluster
    Sharded serving: split a store into per-shard page files, launch
    shard servers plus replicas, probe through the scatter-gather
    router (see docs/CLUSTER.md).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis.report import Table, format_bytes, format_seconds
from .core.parallel.driver import ParallelConfig
from .core.verify import check_bellman, replay_certificate
from .db.query import best_moves
from .db.stats import set_stats
from .db.store import DatabaseSet

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel retrograde analysis (Bal & Allis, SC '95).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="build endgame databases")
    solve.add_argument("--stones", type=int, required=True)
    solve.add_argument("--game", default="awari",
                       help="awari | awari-slam-allowed | awari-no-feed | kalah")
    solve.add_argument("--procs", type=int, default=1)
    solve.add_argument("--combine", type=int, default=256,
                       help="combining buffer capacity in updates (1 = off)")
    solve.add_argument("--partition", default="cyclic",
                       choices=["block", "cyclic", "hash"])
    solve.add_argument("--mode", default="unmove-cached",
                       choices=["unmove", "unmove-cached", "csr"])
    solve.add_argument("--out", default=None, help="save archive here (.npz)")
    solve.add_argument(
        "--metrics-out",
        default=None,
        metavar="RUN_JSON",
        help="write a run manifest (config + metrics registry) here",
    )
    solve.add_argument(
        "--workers", type=int, default=1,
        help="solve on N real cores with a supervised process pool "
             "(multiproc backend; incompatible with --procs)",
    )
    solve.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="crash-safe checkpoint directory; an interrupted run "
             "resumes from it (see docs/RESILIENCE.md)",
    )
    solve.add_argument(
        "--scan-chunk", type=int, default=1 << 15,
        help="positions per scan chunk for --workers fan-out",
    )
    solve.add_argument(
        "--no-shm", action="store_true",
        help="disable the zero-copy shared-memory fan-out for --workers "
             "(workers pickle their results back instead; for platforms "
             "without POSIX shared memory)",
    )
    solve.add_argument(
        "--shm-debug", action="store_true",
        help="enable the ShmArena race detector for --workers fan-outs: "
             "workers record their claimed regions and the parent "
             "raises on any overlap (also: REPRO_SHM_DEBUG=1)",
    )
    solve.add_argument(
        "--inject-fault", action="append", default=[], metavar="SPEC",
        help="deterministic fault injection, e.g. kill-worker:chunk=2, "
             "kill-worker:threshold=3, corrupt-checkpoint:db=4 "
             "(repeatable; see docs/RESILIENCE.md)",
    )
    solve.add_argument(
        "--fault-state-dir", default=None, metavar="DIR",
        help="directory for once-only fault flags (share it with a "
             "resumed run so a fired fault stays fired)",
    )

    stats = sub.add_parser("stats", help="database statistics (Table 1)")
    stats.add_argument("archive")

    verify = sub.add_parser("verify", help="Bellman + replay certificates")
    verify.add_argument("archive")
    verify.add_argument("--samples", type=int, default=30)

    query = sub.add_parser("query", help="evaluate one position")
    query.add_argument("archive")
    query.add_argument(
        "--board",
        required=True,
        help="12 comma-separated pit counts, mover's pits first",
    )

    model = sub.add_parser(
        "model", help="analytic runtime prediction (no simulation)"
    )
    model.add_argument("--stones", type=int, default=13)
    model.add_argument("--procs", type=int, default=64)
    model.add_argument("--combine", type=int, default=256)

    metrics = sub.add_parser(
        "metrics", help="render a run manifest (see solve --metrics-out)"
    )
    metrics.add_argument("manifest", help="run manifest JSON path")

    page = sub.add_parser(
        "page", help="convert an .npz archive to the paged serving format"
    )
    page.add_argument("archive", help="input DatabaseSet archive (.npz)")
    page.add_argument("out", help="output paged store path")
    page.add_argument(
        "--block-positions", type=int, default=None,
        help="positions per compressed block (default 4096)",
    )
    page.add_argument("--level", type=int, default=6,
                      help="zlib compression level (1-9)")
    page.add_argument(
        "--codec", choices=("zlib", "raw", "packed", "packed+zlib"),
        default="zlib",
        help="per-block encoding: zlib compresses, raw stores bare "
             "int16 for zero-copy mmap readers, packed bit-packs values "
             "at the bound-derived width (packed+zlib compresses the "
             "packed blocks on top); see docs/SERVING.md",
    )

    serve = sub.add_parser(
        "serve", help="serve a database over TCP (paged store or .npz)"
    )
    serve.add_argument("store", help="paged store path, or .npz to serve "
                                     "from memory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral, printed on startup)")
    serve.add_argument("--cache-kb", type=int, default=65536,
                       help="block cache budget in KiB (paged stores)")
    serve.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write 'host port' here once listening (for scripts/CI)",
    )
    serve.add_argument(
        "--inject-fault", action="append", default=[], metavar="SPEC",
        help="deterministic fault injection, e.g. drop-conn:every=50, "
             "latency:ms=200,every=3, blackhole:after=10 or "
             "crash-shard:after=50 (repeatable; both protocols; see "
             "docs/RESILIENCE.md)",
    )
    serve.add_argument(
        "--fault-state-dir", default=None, metavar="DIR",
        help="directory for once-only fault flag files; hand a respawned "
             "server the same dir so a fired crash-shard stays fired",
    )
    serve.add_argument(
        "--protocol", choices=("json", "binary"), default="json",
        help="wire protocol: json = thread-per-connection legacy server, "
             "binary = asyncio server speaking the struct-packed frames "
             "of docs/SERVING.md (JSON clients still work on the same "
             "port via version-byte fallback)",
    )
    serve.add_argument(
        "--max-connections", type=int, default=None, metavar="N",
        help="reject connections beyond N with a well-formed "
             "ok:false frame (default: unlimited)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="shed requests beyond N concurrently executing with a "
             "well-formed reason=overloaded answer (default: unlimited; "
             "docs/CLUSTER.md)",
    )

    probe = sub.add_parser("probe", help="query a running probe server")
    probe.add_argument("--host", default="127.0.0.1")
    probe.add_argument("--port", type=int, default=None)
    probe.add_argument(
        "--binary", action="store_true",
        help="speak the binary protocol (pipelined "
             "BinaryProbeClient) instead of JSON",
    )
    probe.add_argument(
        "--endpoint", default=None, metavar="HOST:PORT|PATH",
        help="probe endpoint: host:port picks the binary TCP client, an "
             "existing paged-store path picks the zero-copy mmap client "
             "(alternative to --host/--port)",
    )
    probe.add_argument("--db", default=None, help="database id to probe")
    probe.add_argument("--index", type=int, default=None,
                       help="position index to probe (with --db)")
    probe.add_argument("--board", default=None,
                       help="12 comma-separated pit counts: ask the server "
                            "for the best move")
    probe.add_argument("--stats", action="store_true",
                       help="print server/cache statistics")

    cluster = sub.add_parser(
        "cluster",
        help="sharded serving cluster: split | up | probe "
             "(docs/CLUSTER.md)",
    )
    from .cluster.cli import add_arguments as _cluster_arguments

    _cluster_arguments(cluster)

    staticcheck = sub.add_parser(
        "staticcheck",
        help="run the repo's invariant checkers (docs/STATICCHECK.md)",
    )
    from .staticcheck.cli import add_arguments as _staticcheck_arguments

    _staticcheck_arguments(staticcheck)
    return parser


def _cmd_solve(args) -> int:
    from .core.parallel.driver import ParallelSolver
    from .core.sequential import SequentialSolver
    from .games.registry import capture_game
    from .obs import MetricsRegistry, NULL_METRICS

    game = capture_game(args.game)
    metrics = MetricsRegistry() if args.metrics_out else NULL_METRICS
    faults = None
    if args.inject_fault:
        from .resilience.faults import FaultPlan, FaultSpecError

        try:
            faults = FaultPlan.from_specs(
                args.inject_fault, state_dir=args.fault_state_dir
            )
        except FaultSpecError as exc:
            print(f"bad --inject-fault spec: {exc}", file=sys.stderr)
            return 2
        if faults.worker_kill is not None and args.workers <= 1:
            print("kill-worker faults need --workers > 1", file=sys.stderr)
            return 2
    if args.procs > 1 and args.workers > 1:
        print("--procs (simulated cluster) and --workers (real cores) "
              "are mutually exclusive", file=sys.stderr)
        return 2
    if args.workers > 1 or args.checkpoint_dir:
        return _solve_resilient(args, game, metrics, faults)
    if args.procs > 1:
        config = ParallelConfig(
            n_procs=args.procs,
            combining_capacity=args.combine,
            partition=args.partition,
            predecessor_mode=args.mode,
        )
        solver = ParallelSolver(game, config, metrics=metrics)
        values, stats = solver.solve(args.stones)
        total = stats[-1]
        print(
            f"solved {args.game} up to {args.stones} stones on {args.procs} "
            f"simulated processors"
        )
        print(
            f"  largest database: {format_seconds(total.makespan_seconds)} "
            f"simulated, {total.packets_sent} packets, combining factor "
            f"{total.combining_factor:.1f}"
        )
        rules = game.rules.describe() if hasattr(game, "rules") else ""
        dbs = DatabaseSet(game_name=game.name, values=values, rules=rules)
    else:
        solver = SequentialSolver(game, metrics=metrics)
        values, report = solver.solve(args.stones)
        rules = game.rules.describe() if hasattr(game, "rules") else ""
        dbs = DatabaseSet(game_name=game.name, values=values, rules=rules)
        print(
            f"solved {args.game} up to {args.stones} stones sequentially "
            f"({dbs.total_positions:,} positions, "
            f"{report.wall_seconds:.1f}s wall)"
        )
    if args.out:
        dbs.save(args.out)
        print(f"saved to {args.out} ({format_bytes(dbs.memory_bytes())})")
    if args.metrics_out:
        from .obs import RunManifest

        manifest = RunManifest.from_registry(
            metrics,
            game=game.name,
            command="solve",
            rules=dbs.rules,
            config={
                "stones": args.stones,
                "game": args.game,
                "procs": args.procs,
                "combine": args.combine,
                "partition": args.partition,
                "mode": args.mode,
            },
        )
        manifest.save(args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    return 0


def _solve_resilient(args, game, metrics, faults) -> int:
    """``repro solve`` on the fault-tolerant path: supervised multiproc
    workers and/or crash-safe checkpointing through the pipeline."""
    from .core.pipeline import PipelineConfig, PipelineRunner

    backend = "multiproc" if args.workers > 1 else "sequential"
    config = PipelineConfig(
        backend=backend,
        checkpoint_dir=args.checkpoint_dir,
        workers=args.workers if args.workers > 1 else None,
        scan_chunk=args.scan_chunk,
        use_shm=False if args.no_shm else None,
        shm_debug=True if args.shm_debug else None,
        faults=faults,
    )
    runner = PipelineRunner(game, config, metrics=metrics)
    values, status = runner.run(args.stones)
    rules = game.rules.describe() if hasattr(game, "rules") else ""
    dbs = DatabaseSet(game_name=game.name, values=values, rules=rules)
    solved, resumed = len(status.solved), len(status.resumed)
    where = (f"on {args.workers} workers" if backend == "multiproc"
             else "sequentially")
    print(
        f"solved {args.game} up to {args.stones} stones {where} "
        f"({dbs.total_positions:,} positions, {solved} built, "
        f"{resumed} resumed, {status.wall_seconds:.1f}s wall)"
    )
    if args.checkpoint_dir:
        print(f"checkpoints in {args.checkpoint_dir}")
    if args.out:
        dbs.save(args.out)
        print(f"saved to {args.out} ({format_bytes(dbs.memory_bytes())})")
    if args.metrics_out:
        from .obs import RunManifest

        manifest = RunManifest.from_registry(
            metrics,
            game=game.name,
            command="solve",
            rules=dbs.rules,
            config={
                "stones": args.stones,
                "game": args.game,
                "backend": backend,
                "workers": args.workers,
                "checkpoint_dir": args.checkpoint_dir,
                "scan_chunk": args.scan_chunk,
                "no_shm": bool(args.no_shm),
                "shm_debug": bool(args.shm_debug),
                "inject_fault": list(args.inject_fault),
            },
        )
        manifest.save(args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    return 0


def _cmd_stats(args) -> int:
    dbs = DatabaseSet.load(args.archive)
    table = Table(
        f"database statistics — {dbs.game_name} ({dbs.rules})",
        ["db", "positions", "wins", "draws", "losses", "win%", "draw%"],
    )
    for st in set_stats(dbs):
        table.add(
            st.db_id,
            f"{st.positions:,}",
            f"{st.wins:,}",
            f"{st.draws:,}",
            f"{st.losses:,}",
            f"{100 * st.win_fraction:.2f}",
            f"{100 * st.draw_fraction:.2f}",
        )
    table.show()
    return 0


def _cmd_verify(args) -> int:
    from .games.registry import capture_game_for

    dbs = DatabaseSet.load(args.archive)
    game = capture_game_for(dbs)
    failures = 0
    for db_id in dbs.ids():
        report = check_bellman(game, db_id, dbs.values)
        status = "ok" if report.ok else f"{report.violations} VIOLATIONS"
        print(f"db {db_id}: bellman {status} ({report.checked:,} positions)")
        failures += report.violations
    if failures:
        print("skipping replay: bellman check already failed")
        return 1
    top = max(dbs.ids())
    if top >= 1:
        try:
            replayed = replay_certificate(game, dbs, top, samples=args.samples)
        except AssertionError as exc:
            print(f"replay FAILED: {exc}")
            return 1
        print(f"db {top}: replayed {replayed} optimal lines, all matched")
    return 0


def _cmd_query(args) -> int:
    from .games.registry import capture_game_for

    dbs = DatabaseSet.load(args.archive)
    game = capture_game_for(dbs)
    board = np.array([int(x) for x in args.board.split(",")], dtype=np.int16)
    if board.shape != (12,):
        print("board must have 12 pit counts", file=sys.stderr)
        return 2
    if int(board.sum()) not in dbs:
        print(
            f"no database for {int(board.sum())} stones in this archive",
            file=sys.stderr,
        )
        return 2
    print(game.engine.board_to_string(board))
    value, moves = best_moves(game, dbs, board)
    print(f"value for the mover: {value:+d}")
    if not moves:
        print("terminal position (no legal move)")
    for m in moves:
        print(f"  optimal: pit {m.pit} (captures {m.captures})")
    return 0


def _cmd_model(args) -> int:
    from .analysis.calibration import sequential_seconds
    from .analysis.model import ModelInput, predict
    from .games.awari_index import AwariIndexer

    size = AwariIndexer(args.stones).count
    # Notification rate and wave count fitted on the solved benchmark
    # databases (see analysis.calibration); constants below match the
    # measured awari averages.
    notifications = 1.3 * size * args.stones
    waves = 55.0
    pred = predict(
        ModelInput(
            size=size,
            thresholds=args.stones,
            notifications=notifications,
            n_procs=args.procs,
            combining_capacity=args.combine,
            waves=waves,
        )
    )
    print(
        f"awari {args.stones}-stone database "
        f"({size:,} positions, modeled 1995 cluster):"
    )
    print(f"  sequential       : {format_seconds(pred.t_sequential)}")
    print(f"  on {args.procs:>3} processors: {format_seconds(pred.t_parallel)} "
          f"(speedup {pred.speedup:.1f})")
    print(f"  compute/P        : {format_seconds(pred.t_compute)}")
    print(f"  message CPU /P   : {format_seconds(pred.t_message_cpu)}")
    print(f"  shared wire      : {format_seconds(pred.t_wire)}")
    print(f"  combining factor : {pred.combining_factor:.1f}")
    return 0


def _cmd_metrics(args) -> int:
    from .obs import RunManifest

    try:
        man = RunManifest.load(args.manifest)
    except (OSError, ValueError) as exc:
        print(f"cannot read manifest: {exc}", file=sys.stderr)
        return 2
    header = f"run manifest — {man.game}"
    if man.command:
        header += f" ({man.command})"
    print(header)
    if man.rules:
        print(f"  rules: {man.rules}")
    for key in sorted(man.config):
        print(f"  {key} = {man.config[key]}")
    if man.seed is not None:
        print(f"  seed = {man.seed}")
    print()

    counters = man.metrics.get("counters", {})
    gauges = man.metrics.get("gauges", {})
    if "parallel.updates_sent" in counters:
        # Table-3-style communication summary for parallel runs.
        updates = counters.get("parallel.updates_sent", 0)
        packets = counters.get("parallel.packets_sent", 0)
        factor = gauges.get(
            "parallel.combining_factor", updates / packets if packets else 0.0
        )
        table = Table(
            "communication summary (Table 3)",
            ["updates", "packets", "factor", "bytes", "frames", "ctrl-msgs"],
        )
        table.add(
            f"{int(updates):,}",
            f"{int(packets):,}",
            f"{factor:.1f}",
            format_bytes(counters.get("parallel.bytes_sent", 0)),
            f"{int(counters.get('simnet.ethernet.frames', 0)):,}",
            f"{int(counters.get('parallel.control_messages', 0)):,}",
        )
        table.show()

    if counters:
        table = Table("counters", ["name", "value"], widths=[44, 16])
        for name, value in counters.items():
            table.add(name, f"{value:,}" if isinstance(value, int) else value)
        table.show()
    if gauges:
        table = Table("gauges", ["name", "value"], widths=[44, 16])
        for name, value in gauges.items():
            table.add(name, f"{value:.3f}")
        table.show()
    hists = man.metrics.get("histograms", {})
    if hists:
        table = Table(
            "histograms", ["name", "count", "mean", "max"], widths=[44, 8, 14, 14]
        )
        for name, h in hists.items():
            table.add(name, h["count"], f"{h['mean']:.4g}", f"{h['max']:.4g}")
        table.show()
    if man.timers:
        table = Table(
            "timers (wall clock)",
            ["name", "count", "total", "mean"],
            widths=[44, 8, 12, 12],
        )
        for name, h in man.timers.items():
            table.add(
                name,
                h["count"],
                format_seconds(h["total"]),
                format_seconds(h["mean"]),
            )
        table.show()
    return 0


def _cmd_page(args) -> int:
    from .serve.pagedstore import DEFAULT_BLOCK_POSITIONS, write_paged

    block_positions = args.block_positions or DEFAULT_BLOCK_POSITIONS
    try:
        dbs = DatabaseSet.load(args.archive)
    except (OSError, KeyError, ValueError) as exc:
        print(f"cannot read archive: {exc}", file=sys.stderr)
        return 2
    summary = write_paged(
        dbs, args.out, block_positions=block_positions, level=args.level,
        codec=args.codec,
    )
    print(
        f"paged {summary['databases']} databases "
        f"({summary['positions']:,} positions, codec {args.codec}) "
        f"to {args.out}"
    )
    print(
        f"  {format_bytes(summary['value_bytes'])} int16 values -> "
        f"{format_bytes(summary['stored_bytes'])} stored in "
        f"{block_positions}-position blocks "
        f"(stored ratio {summary['stored_ratio']:.1f}x, file "
        f"{format_bytes(summary['file_bytes'])})"
    )
    return 0


def _cmd_serve(args) -> int:
    from pathlib import Path

    from .serve.server import ProbeServer
    from .serve.service import ProbeService

    faults = None
    if args.inject_fault:
        from .resilience.faults import FaultPlan, FaultSpecError

        try:
            faults = FaultPlan.from_specs(
                args.inject_fault, state_dir=args.fault_state_dir
            )
        except FaultSpecError as exc:
            print(f"bad --inject-fault spec: {exc}", file=sys.stderr)
            return 2
    if args.store.endswith(".npz"):
        service = ProbeService.from_database_set(DatabaseSet.load(args.store))
    else:
        service = ProbeService.from_paged(
            args.store, cache_bytes=args.cache_kb * 1024
        )
    if args.protocol == "binary":
        from .aserve.server import AsyncProbeServer

        server = AsyncProbeServer(service, host=args.host, port=args.port,
                                  faults=faults,
                                  max_connections=args.max_connections,
                                  max_inflight=args.max_inflight)
    else:
        server = ProbeServer(service, host=args.host, port=args.port,
                             faults=faults,
                             max_connections=args.max_connections,
                             max_inflight=args.max_inflight)
    describe = f"{service.game_name} ({args.protocol}, "
    describe += f"{service.backend_kind}"
    if service.backend_kind == "paged":
        describe += f", cache {format_bytes(args.cache_kb * 1024)}"
    describe += ")"
    if faults is not None and faults.connection_drop is not None:
        drop = faults.connection_drop
        parts = [f"every={drop.every}" if drop.every else "",
                 f"after={drop.after}" if drop.after else ""]
        describe += f" [chaos: drop {' '.join(p for p in parts if p)}]"
    print(f"serving {describe} on {server.host}:{server.port}", flush=True)
    if args.ready_file:
        # Atomic so a watcher never reads a half-written host/port line.
        from .resilience.checkpoint import atomic_write_text

        atomic_write_text(Path(args.ready_file), f"{server.host} {server.port}\n")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    server.shutdown()
    service.close()
    print("server stopped")
    return 0


def _cmd_cluster(args) -> int:
    from .cluster.cli import run

    return run(args)


def _cmd_staticcheck(args) -> int:
    from .staticcheck.cli import run

    return run(args)


def _make_probe_client(args):
    """Build the client `repro probe` asked for: mmap for a local-path
    --endpoint, pipelined binary for host:port endpoints or --binary,
    legacy JSON otherwise."""
    from .serve.client import ProbeClient

    if args.endpoint is not None:
        from .aserve import connect

        return connect(args.endpoint)
    if args.binary:
        from .aserve.client import BinaryProbeClient

        return BinaryProbeClient(args.host, args.port)
    return ProbeClient(args.host, args.port)


def _cmd_probe(args) -> int:
    from .serve.client import ProbeError

    asked = args.stats or args.board is not None or args.db is not None
    if not asked:
        print("nothing to do: pass --db/--index, --board, or --stats",
              file=sys.stderr)
        return 2
    if (args.db is None) != (args.index is None):
        print("--db and --index go together", file=sys.stderr)
        return 2
    if args.endpoint is None and args.port is None:
        print("pass --port (with optional --host/--binary) or --endpoint",
              file=sys.stderr)
        return 2
    try:
        with _make_probe_client(args) as client:
            if args.db is not None:
                db_id = DatabaseSet._parse_id(args.db)
                value = client.probe(db_id, args.index)
                print(f"db {db_id} index {args.index}: value {value:+d}")
            if args.board is not None:
                board = [int(x) for x in args.board.split(",")]
                if len(board) != 12:
                    print("board must have 12 pit counts", file=sys.stderr)
                    return 2
                answer = client.best_move(board)
                print(f"value for the mover: {answer['value']:+d}")
                for move in answer["moves"]:
                    print(f"  optimal: pit {move['pit']} "
                          f"(captures {move['captures']})")
            if args.stats:
                stats = client.stats()
                for key in sorted(stats):
                    print(f"  {key} = {stats[key]}")
    except (ProbeError, OSError, ValueError) as exc:
        print(f"probe failed: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    """Parse arguments and dispatch to the subcommand handlers."""
    args = _build_parser().parse_args(argv)
    handler = {
        "solve": _cmd_solve,
        "stats": _cmd_stats,
        "verify": _cmd_verify,
        "query": _cmd_query,
        "model": _cmd_model,
        "metrics": _cmd_metrics,
        "page": _cmd_page,
        "serve": _cmd_serve,
        "probe": _cmd_probe,
        "cluster": _cmd_cluster,
        "staticcheck": _cmd_staticcheck,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
