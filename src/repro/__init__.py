"""repro — Parallel Retrograde Analysis on a Distributed System.

A full reproduction of Bal & Allis (SC '95): awari endgame databases
computed by distributed retrograde analysis with message combining, on a
deterministic simulation of a 1995 Ethernet processor pool.

Quickstart::

    from repro import AwariCaptureGame, SequentialSolver, solve_awari

    dbs, report = solve_awari(stones=6)           # sequential
    dbs, stats = solve_awari(stones=6, procs=16)  # simulated cluster

See ``examples/`` for full applications and ``benchmarks/`` for the
reproduction of every table and figure in EXPERIMENTS.md.
"""

from .api import solve_awari, solve_wdl_game
from .core import (
    ParallelConfig,
    ParallelSolver,
    SequentialSolver,
    solve_wdl,
)
from .db import DatabaseSet, best_moves, optimal_line, set_stats
from .games import (
    AwariCaptureGame,
    AwariGame,
    AwariRules,
    GrandSlam,
    LoopyGraphGame,
    NimGame,
)
from .obs import MetricsRegistry, RunManifest
from .simnet import DEFAULT_COSTS, CostModel, EthernetConfig

__version__ = "1.0.0"

__all__ = [
    "solve_awari",
    "solve_wdl_game",
    "SequentialSolver",
    "ParallelSolver",
    "ParallelConfig",
    "solve_wdl",
    "DatabaseSet",
    "best_moves",
    "optimal_line",
    "set_stats",
    "AwariCaptureGame",
    "AwariGame",
    "AwariRules",
    "GrandSlam",
    "NimGame",
    "LoopyGraphGame",
    "CostModel",
    "DEFAULT_COSTS",
    "EthernetConfig",
    "MetricsRegistry",
    "RunManifest",
    "__version__",
]
