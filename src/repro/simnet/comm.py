"""Blocking, mpi4py-flavoured communication on the simulated cluster.

The raw :class:`~repro.simnet.rts.Actor` interface is callback-driven —
fast, but awkward for straight-line SPMD code.  This module adds a
coroutine layer: write your node program as a *generator* that yields
communication operations, in the familiar blocking style of MPI:

    def program(comm):
        if comm.rank == 0:
            yield comm.send(1, "work", payload=42, size_bytes=64)
            reply = yield comm.recv(source=1)
        else:
            msg = yield comm.recv(source=0)
            yield comm.compute(1e-3)
            yield comm.send(0, "done", payload=msg.payload * 2)
        total = yield from comm.allreduce(comm.rank, op=sum)

    makespan, programs = run_programs([program] * 4)

Primitives (``yield`` one): :meth:`Comm.send`, :meth:`Comm.recv`,
:meth:`Comm.compute`.  Collectives (``yield from``): ``barrier``,
``bcast``, ``gather``, ``allreduce``.  All timing flows through the same
cost model and shared Ethernet as everything else in :mod:`repro.simnet`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .costs import CostModel, DEFAULT_COSTS
from .engine import SimulationError
from .ethernet import EthernetConfig
from .rts import Actor, Context, Message, SPMDRuntime

__all__ = ["Comm", "CoActor", "run_programs"]


@dataclass(frozen=True)
class _Send:
    dst: int
    tag: str
    payload: object
    size_bytes: int


@dataclass(frozen=True)
class _Recv:
    source: int | None
    tag: str | None


@dataclass(frozen=True)
class _Compute:
    seconds: float


class Comm:
    """Operation factory handed to node programs."""

    def __init__(self, rank: int, size: int):
        self.rank = rank
        self.size = size

    # ------------------------------------------------------------ primitives

    def send(self, dst: int, tag: str = "msg", payload=None, size_bytes: int = 16):
        """Asynchronous (buffered) send; completes immediately."""
        return _Send(dst, tag, payload, size_bytes)

    def recv(self, source: int | None = None, tag: str | None = None):
        """Block until a matching message arrives; yields the Message."""
        return _Recv(source, tag)

    def compute(self, seconds: float):
        """Charge local CPU time."""
        return _Compute(seconds)

    # ------------------------------------------------------------ collectives

    def barrier(self, tag: str = "__barrier__"):
        """Central-coordinator barrier (gather-then-release)."""
        if self.rank == 0:
            for _ in range(self.size - 1):
                yield self.recv(tag=tag + ".in")
            for dst in range(1, self.size):
                yield self.send(dst, tag + ".out")
        else:
            yield self.send(0, tag + ".in")
            yield self.recv(source=0, tag=tag + ".out")

    def bcast(self, value=None, root: int = 0, size_bytes: int = 16,
              tag: str = "__bcast__"):
        """Broadcast ``value`` from ``root``; every rank returns it."""
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    yield self.send(dst, tag, payload=value, size_bytes=size_bytes)
            return value
        msg = yield self.recv(source=root, tag=tag)
        return msg.payload

    def gather(self, value, root: int = 0, size_bytes: int = 16,
               tag: str = "__gather__"):
        """Gather one value per rank at ``root`` (returns list there,
        None elsewhere)."""
        if self.rank == root:
            out = [None] * self.size
            out[root] = value
            for _ in range(self.size - 1):
                msg = yield self.recv(tag=tag)
                out[msg.src] = msg.payload
            return out
        yield self.send(root, tag, payload=value, size_bytes=size_bytes)
        return None

    def allreduce(self, value, op=sum, size_bytes: int = 16,
                  tag: str = "__allreduce__"):
        """Reduce over all ranks then broadcast the result."""
        gathered = yield from self.gather(value, root=0, size_bytes=size_bytes,
                                          tag=tag + ".g")
        result = op(gathered) if self.rank == 0 else None
        result = yield from self.bcast(result, root=0, size_bytes=size_bytes,
                                       tag=tag + ".b")
        return result


class CoActor(Actor):
    """Drives one generator program on a simulated node."""

    def __init__(self, program, rank: int, size: int):
        self.comm = Comm(rank, size)
        self._program = program
        self._gen = None
        self._inbox: deque = deque()
        self._waiting: _Recv | None = None
        self.done = False
        self.result = None

    # ----------------------------------------------------------------- hooks

    def on_start(self, ctx: Context) -> None:
        self._gen = self._program(self.comm)
        self._advance(ctx, None)

    def on_message(self, ctx: Context, msg: Message) -> None:
        self._inbox.append(msg)
        if self._waiting is not None:
            matched = self._match(self._waiting)
            if matched is not None:
                self._waiting = None
                self._advance(ctx, matched)

    # ------------------------------------------------------------- internals

    def _match(self, want: _Recv) -> Message | None:
        for i, msg in enumerate(self._inbox):
            if want.source is not None and msg.src != want.source:
                continue
            if want.tag is not None and msg.tag != want.tag:
                continue
            del self._inbox[i]
            return msg
        return None

    def _advance(self, ctx: Context, value) -> None:
        try:
            op = self._gen.send(value)
            while True:
                if isinstance(op, _Compute):
                    ctx.charge(op.seconds)
                    op = self._gen.send(None)
                elif isinstance(op, _Send):
                    ctx.send(op.dst, op.tag, op.payload, op.size_bytes)
                    op = self._gen.send(None)
                elif isinstance(op, _Recv):
                    msg = self._match(op)
                    if msg is None:
                        self._waiting = op
                        return
                    op = self._gen.send(msg)
                else:
                    raise SimulationError(
                        f"program yielded {op!r}; yield Comm operations "
                        "(and use 'yield from' for collectives)"
                    )
        except StopIteration as stop:
            self.done = True
            self.result = stop.value


def run_programs(
    programs,
    costs: CostModel = DEFAULT_COSTS,
    ethernet: EthernetConfig | None = None,
    node_speeds=None,
    max_events: int | None = None,
):
    """Run one program per node to completion.

    Returns ``(makespan_seconds, results)`` where ``results[r]`` is the
    value returned by rank r's program.  Raises if any program is still
    blocked when the cluster goes quiet (deadlock).
    """
    actors = [
        CoActor(program, rank, len(programs))
        for rank, program in enumerate(programs)
    ]
    runtime = SPMDRuntime(
        actors, costs=costs, ethernet_config=ethernet, node_speeds=node_speeds
    )
    makespan = runtime.run(max_events=max_events)
    stuck = [a.comm.rank for a in actors if not a.done]
    if stuck:
        raise SimulationError(
            f"deadlock: ranks {stuck} still waiting at quiescence"
        )
    return makespan, [a.result for a in actors]
