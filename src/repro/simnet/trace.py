"""Execution tracing for simulated runs.

A :class:`Tracer` records message-level events from an
:class:`~repro.simnet.rts.SPMDRuntime` (by wrapping its delivery and
transmit paths) and renders useful diagnostics:

* a chronological event log (bounded);
* a message-flow matrix (who sent how many packets to whom);
* per-tag counts — e.g. how many UPDATE vs TOKEN vs PHASE messages a
  run needed, which is how the termination-detection overhead of
  Table 3 was first measured.

Tracing is opt-in and adds no cost when unused.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import NULL_METRICS
from .rts import Message, SPMDRuntime

__all__ = ["TraceEvent", "Tracer"]


@dataclass
class TraceEvent:
    """One recorded send or delivery."""

    time: float
    kind: str  # "send" | "deliver"
    src: int
    dst: int
    tag: str
    size_bytes: int

    def render(self) -> str:
        arrow = "->" if self.kind == "send" else ">>"
        return (
            f"{self.time * 1e3:12.3f}ms  {self.src:3d} {arrow} {self.dst:3d}  "
            f"{self.tag:<14} {self.size_bytes:6d}B"
        )


@dataclass
class Tracer:
    """Attachable message tracer; see the module docstring."""

    max_events: int = 10_000
    events: list = field(default_factory=list)
    dropped: int = 0
    tag_counts: dict = field(default_factory=dict)
    #: Optional :class:`~repro.obs.MetricsRegistry`; when given, trace
    #: events are mirrored there (``trace.`` prefix) so message-level
    #: diagnostics land on the same surface as every other measurement.
    metrics: object = NULL_METRICS
    _flow: np.ndarray | None = None
    _runtime: SPMDRuntime | None = None

    def attach(self, runtime: SPMDRuntime) -> "Tracer":
        """Instrument a runtime (before calling ``run``)."""
        if self._runtime is not None:
            raise RuntimeError("tracer already attached")
        self._runtime = runtime
        n = runtime.n_nodes
        self._flow = np.zeros((n, n), dtype=np.int64)

        original_transmit = runtime.ethernet.transmit
        original_deliver = runtime._deliver

        def traced_transmit(src, dst, size_bytes, message):
            self._record("send", src, dst, message)
            original_transmit(src, dst, size_bytes, message)

        def traced_deliver(dst, message: Message):
            self._record("deliver", message.src, dst, message)
            original_deliver(dst, message)

        runtime.ethernet.transmit = traced_transmit
        runtime.ethernet.attach(traced_deliver)
        return self

    def _record(self, kind: str, src: int, dst: int, message: Message) -> None:
        now = self._runtime.sim.now
        if self.metrics.enabled:
            self.metrics.inc(f"trace.{kind}.{message.tag}")
        if kind == "send":
            self.tag_counts[message.tag] = self.tag_counts.get(message.tag, 0) + 1
            if dst >= 0:
                self._flow[src, dst] += 1
            else:
                self._flow[src, :] += 1
                self._flow[src, src] -= 1
        if len(self.events) < self.max_events:
            self.events.append(
                TraceEvent(now, kind, src, dst, message.tag, message.size_bytes)
            )
        else:
            self.dropped += 1

    # ------------------------------------------------------------ reporting

    def flow_matrix(self) -> np.ndarray:
        """Packets sent from row to column."""
        if self._flow is None:
            raise RuntimeError("tracer was never attached")
        return self._flow.copy()

    def render_log(self, limit: int = 50) -> str:
        lines = [e.render() for e in self.events[:limit]]
        if len(self.events) > limit or self.dropped:
            extra = len(self.events) - limit + self.dropped
            lines.append(f"... ({extra} more events)")
        return "\n".join(lines)

    def render_flow(self) -> str:
        flow = self.flow_matrix()
        n = flow.shape[0]
        head = "      " + "".join(f"{d:>8}" for d in range(n))
        rows = [head]
        for s in range(n):
            rows.append(f"{s:>6}" + "".join(f"{int(c):>8}" for c in flow[s]))
        return "\n".join(rows)

    def render_tags(self) -> str:
        total = sum(self.tag_counts.values())
        lines = [f"{'tag':<16}{'count':>10}{'share':>9}"]
        for tag, count in sorted(self.tag_counts.items(), key=lambda kv: -kv[1]):
            lines.append(f"{tag:<16}{count:>10}{100 * count / total:>8.1f}%")
        return "\n".join(lines)
