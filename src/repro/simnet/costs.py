"""CPU and messaging cost model for the simulated 1995 cluster.

Every abstract operation the retrograde-analysis workers perform is
charged against the owning processor's clock through these constants.
The defaults model the hardware behind the paper: an Amoeba processor
pool of MC68030-class nodes (~5 MIPS) on shared 10 Mbit/s Ethernet, with
Amoeba's famously lean (~1 ms) user-space datagram path.  Per-operation
instruction-count estimates come from the structure of the algorithm:

========================  ========  =====================================
constant                  default   derivation sketch (at ~5 MIPS)
========================  ========  =====================================
scan_position             8.0 ms    unrank + 6 x (sow, capture chain,
                                    re-rank into 1-2 databases) ≈ 40k instr
threshold_init_position   80 µs     reset status/counter + exit compare
update_generate           2.4 ms    share of un-sowing one finalized
                                    position, verified, per parent found
                                    ≈ 12k instr
update_apply              160 µs    owner/slot lookup + counter update
value_assemble_position   40 µs     write final byte from labels
msg_overhead_send         1.0 ms    Amoeba user-space RPC/datagram path
msg_overhead_recv         1.0 ms    interrupt + protocol + dispatch
marshal_per_byte          0.4 µs    copy into the combining buffer
========================  ========  =====================================

End-to-end anchoring against the paper's abstract: with these constants
the cost model puts the 13-stone database at ~37 h sequential and
~45-50 min on 64 processors (speedup ≈ 48) — see
:mod:`repro.analysis.calibration` and EXPERIMENTS.md.  All *comparative*
results — combining factors, crossovers, who wins — depend only on
ratios, not on the absolute scale.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """Seconds charged per abstract operation."""

    scan_position: float = 8.0e-3
    threshold_init_position: float = 80e-6
    update_generate: float = 2.4e-3
    #: Per-parent cost when predecessors come from a stored transposed
    #: graph instead of un-moving (the "csr" ablation): a few loads.
    update_generate_fast: float = 120e-6
    update_apply: float = 160e-6
    value_assemble_position: float = 40e-6
    msg_overhead_send: float = 1.0e-3
    msg_overhead_recv: float = 1.0e-3
    marshal_per_byte: float = 0.4e-6

    def scaled(self, cpu_factor: float = 1.0, msg_factor: float = 1.0) -> "CostModel":
        """A derived model with CPU and/or messaging costs scaled.

        Used for what-if ablations (faster CPUs, slower RPC paths) and for
        checking that database *contents* are timing-independent.
        """
        return CostModel(
            scan_position=self.scan_position * cpu_factor,
            threshold_init_position=self.threshold_init_position * cpu_factor,
            update_generate=self.update_generate * cpu_factor,
            update_generate_fast=self.update_generate_fast * cpu_factor,
            update_apply=self.update_apply * cpu_factor,
            value_assemble_position=self.value_assemble_position * cpu_factor,
            msg_overhead_send=self.msg_overhead_send * msg_factor,
            msg_overhead_recv=self.msg_overhead_recv * msg_factor,
            marshal_per_byte=self.marshal_per_byte * msg_factor,
        )


DEFAULT_COSTS = CostModel()
