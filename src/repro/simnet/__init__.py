"""Simulated distributed system: event engine, Ethernet, SPMD runtime."""

from .comm import Comm, CoActor, run_programs
from .costs import DEFAULT_COSTS, CostModel
from .engine import SimulationError, Simulator
from .ethernet import Ethernet, EthernetConfig
from .rts import Actor, Context, Message, NodeStats, SPMDRuntime

__all__ = [
    "CostModel",
    "DEFAULT_COSTS",
    "Simulator",
    "SimulationError",
    "Ethernet",
    "EthernetConfig",
    "Actor",
    "Context",
    "Message",
    "NodeStats",
    "SPMDRuntime",
    "Comm",
    "CoActor",
    "run_programs",
]
