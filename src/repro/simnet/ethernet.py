"""Shared-medium Ethernet model (the paper's 10 Mbit/s segment).

All stations share one cable: transmissions serialize, so aggregate
throughput is capped at the segment bandwidth regardless of the number of
processors — the effect that bends the paper's speedup curve at high P.

Modelling choices (documented simplifications of CSMA/CD):

* Arbitration is FIFO by request time instead of binary exponential
  backoff; a ``contention_efficiency`` factor (default 0.9) derates the
  usable bandwidth for PHY overheads under load.
* When a frame finds the medium busy (i.e., actually contends), it pays
  an additional **contention slot penalty** of ``e × slot_time``
  (~140 µs) — the classic Metcalfe–Boggs result for CSMA/CD collision
  resolution.  This is what makes minimum-size frames so expensive on a
  loaded segment: an 84-byte frame needs ~67 µs of wire but ~140 µs of
  contention, capping small-frame throughput near a third of nominal —
  the physics behind the paper's "enormous" overhead for uncombined
  updates.
* Messages larger than the MTU are fragmented into back-to-back frames;
  per-frame overhead covers preamble, MAC header, FCS and the inter-frame
  gap.
* Broadcast frames (``dst < 0``) are received by every station in one
  transmission — exactly how the original system's broadcast-based
  protocols used the medium.

Delivery order between any pair of stations is FIFO by construction,
which is the reliability contract the transport layer advertises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .engine import Simulator

__all__ = ["EthernetConfig", "Ethernet"]


@dataclass(frozen=True)
class EthernetConfig:
    """Physical parameters of the shared segment."""

    bandwidth_bps: float = 10e6  # classic 10 Mbit/s Ethernet
    frame_overhead_bytes: int = 38  # preamble 8 + header 14 + FCS 4 + IFG 12
    mtu_bytes: int = 1500
    min_payload_bytes: int = 46  # Ethernet minimum frame padding
    propagation_delay_s: float = 25e-6
    contention_efficiency: float = 0.9
    #: Medium time burned resolving contention per *contended* frame:
    #: e × 51.2 µs slots (Metcalfe–Boggs).  Charged only when the frame
    #: found the medium busy; an idle segment sends collision-free.
    contention_slot_penalty_s: float = 139e-6

    def frame_time(self, payload: int) -> float:
        """Seconds the medium is busy for one uncontended frame of
        ``payload`` bytes."""
        wire_bytes = max(payload, self.min_payload_bytes) + self.frame_overhead_bytes
        return (wire_bytes * 8.0) / (self.bandwidth_bps * self.contention_efficiency)


@dataclass
class EthernetStats:
    """Aggregate medium counters for one simulation run."""

    frames: int = 0
    contended_frames: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0
    busy_seconds: float = 0.0
    contention_seconds: float = 0.0
    broadcasts: int = 0


class Ethernet:
    """The shared segment: serializes frames, delivers to station inboxes."""

    def __init__(self, sim: Simulator, n_stations: int, config: EthernetConfig | None = None):
        self.sim = sim
        self.n_stations = n_stations
        self.config = config or EthernetConfig()
        self._free_at = 0.0
        self.stats = EthernetStats()
        self._deliver: Callable | None = None

    def attach(self, deliver: Callable) -> None:
        """Register the delivery callback: ``deliver(dst, message)``."""
        self._deliver = deliver

    def transmit(self, src: int, dst: int, size_bytes: int, message) -> None:
        """Queue a message for transmission at the current simulated time.

        ``dst < 0`` broadcasts.  The message is fragmented into MTU-sized
        frames; the *last* frame's arrival completes delivery (earlier
        fragments are held by the receiving NIC model).
        """
        if self._deliver is None:
            raise RuntimeError("ethernet has no delivery callback attached")
        cfg = self.config
        remaining = max(int(size_bytes), 1)
        arrival = self.sim.now
        while remaining > 0:
            payload = min(remaining, cfg.mtu_bytes)
            remaining -= payload
            frame_time = cfg.frame_time(payload)
            contended = self._free_at > self.sim.now
            if contended:
                # The station found the medium busy: pay the CSMA/CD
                # collision-resolution slots on top of the frame itself.
                frame_time += cfg.contention_slot_penalty_s
                self.stats.contended_frames += 1
                self.stats.contention_seconds += cfg.contention_slot_penalty_s
            start = max(self.sim.now, self._free_at)
            self._free_at = start + frame_time
            arrival = start + frame_time + cfg.propagation_delay_s
            self.stats.frames += 1
            self.stats.payload_bytes += payload
            self.stats.wire_bytes += (
                max(payload, cfg.min_payload_bytes) + cfg.frame_overhead_bytes
            )
            self.stats.busy_seconds += frame_time
        if dst < 0:
            self.stats.broadcasts += 1
            for station in range(self.n_stations):
                if station != src:
                    self.sim.schedule_at(arrival, self._deliver, station, message)
        else:
            self.sim.schedule_at(arrival, self._deliver, dst, message)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the medium carried frames."""
        if elapsed <= 0:
            return 0.0
        return min(self.stats.busy_seconds / elapsed, 1.0)
