"""SPMD runtime system over the simulated cluster.

Each of the P processors runs one :class:`Actor` (the application code).
The runtime mirrors the structure of a 1995 message-passing runtime
(Amoeba-style): a node is either asleep, or executing a *step* — handling
one incoming message or one slice of local work.  During a step the actor
charges CPU time (:meth:`Context.charge`) and posts messages, which leave
the node when the step's CPU work completes and then contend for the
shared Ethernet.

Scheduling rules (all deterministic):

* message delivery wakes a sleeping node at ``max(arrival, busy_until)``;
* after a step the node immediately schedules another one if its inbox is
  non-empty or the actor reports pending local work;
* a node with no inbox and no local work sleeps — simulation time never
  advances by polling, so an empty event queue means global quiescence.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..obs import NULL_METRICS
from .costs import CostModel, DEFAULT_COSTS
from .engine import Simulator
from .ethernet import Ethernet, EthernetConfig

__all__ = ["Message", "Actor", "Context", "NodeStats", "SPMDRuntime"]


@dataclass
class Message:
    """An application message; ``size_bytes`` is its simulated wire size."""

    src: int
    dst: int  # < 0 means broadcast
    tag: str
    payload: object
    size_bytes: int


@dataclass
class NodeStats:
    """Per-node counters accumulated by the runtime."""

    cpu_seconds: float = 0.0
    steps: int = 0
    msgs_sent: int = 0
    msgs_received: int = 0
    bytes_sent: int = 0
    counters: dict = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount


class Actor:
    """Application code run on one simulated processor.  Subclass and
    override; every callback receives a :class:`Context`."""

    def on_start(self, ctx: "Context") -> None:
        """Called once at time 0."""

    def on_message(self, ctx: "Context", msg: Message) -> None:
        """Handle one delivered message."""

    def on_idle(self, ctx: "Context") -> None:
        """Perform one slice of local work (only called when
        :meth:`has_local_work` returned True)."""

    def on_timer(self, ctx: "Context") -> None:
        """Handle an expired timer set with :meth:`Context.set_timer`."""

    def has_local_work(self) -> bool:
        return False


class Context:
    """Per-step API handed to actor callbacks."""

    def __init__(self, runtime: "SPMDRuntime", rank: int):
        self._runtime = runtime
        self.rank = rank
        self.size = runtime.n_nodes
        self._charged = 0.0
        self._outbox: list[Message] = []

    @property
    def now(self) -> float:
        return self._runtime.sim.now

    @property
    def stats(self) -> NodeStats:
        return self._runtime.node_stats[self.rank]

    def charge(self, seconds: float) -> None:
        """Account ``seconds`` of CPU work to this step."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self._charged += seconds

    def send(self, dst: int, tag: str, payload=None, size_bytes: int = 16) -> None:
        """Post a message; it departs when this step's CPU work is done.

        The fixed per-message software overhead and the per-byte marshal
        cost are charged automatically — this is the cost that message
        combining amortizes.
        """
        costs = self._runtime.costs
        self.charge(costs.msg_overhead_send + costs.marshal_per_byte * size_bytes)
        self._outbox.append(Message(self.rank, dst, tag, payload, size_bytes))

    def broadcast(self, tag: str, payload=None, size_bytes: int = 16) -> None:
        """Post a broadcast (single transmission, received by everyone)."""
        costs = self._runtime.costs
        self.charge(costs.msg_overhead_send + costs.marshal_per_byte * size_bytes)
        self._outbox.append(Message(self.rank, -1, tag, payload, size_bytes))

    def set_timer(self, delay: float) -> None:
        """Arm (or re-arm) this node's single timer: :meth:`Actor.on_timer`
        fires ``delay`` simulated seconds after the current step ends.
        Setting a new timer cancels the previous one."""
        self._runtime._arm_timer(self.rank, delay)

    def cancel_timer(self) -> None:
        self._runtime._cancel_timer(self.rank)


class _Node:
    __slots__ = (
        "rank", "actor", "inbox", "busy_until", "scheduled",
        "timer_seq", "timer_due",
    )

    def __init__(self, rank: int, actor: Actor):
        self.rank = rank
        self.actor = actor
        self.inbox: deque = deque()
        self.busy_until = 0.0
        self.scheduled = False
        self.timer_seq = 0  # bumping invalidates in-flight timer events
        self.timer_due = False


class SPMDRuntime:
    """P simulated processors, one Ethernet segment, one actor each."""

    def __init__(
        self,
        actors: list[Actor],
        costs: CostModel = DEFAULT_COSTS,
        ethernet_config: EthernetConfig | None = None,
        node_speeds=None,
        metrics=None,
    ):
        """``node_speeds[r]`` is a per-node slowdown factor (1.0 = the
        reference machine, 2.0 = half speed) applied to every CPU charge —
        the Amoeba processor pools were heterogeneous, and the algorithm's
        static partitioning makes that imbalance visible."""
        self.n_nodes = len(actors)
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        if node_speeds is None:
            node_speeds = [1.0] * self.n_nodes
        if len(node_speeds) != self.n_nodes:
            raise ValueError("need one speed factor per node")
        if any(s <= 0 for s in node_speeds):
            raise ValueError("speed factors must be positive")
        self.node_speeds = list(node_speeds)
        self.sim = Simulator()
        self.costs = costs
        self.ethernet = Ethernet(self.sim, self.n_nodes, ethernet_config)
        self.ethernet.attach(self._deliver)
        self._nodes = [_Node(r, a) for r, a in enumerate(actors)]
        self.node_stats = [NodeStats() for _ in actors]
        #: Metrics registry fed by the runtime and the Ethernet model
        #: (``simnet.`` prefix).  All quantities are simulated, hence
        #: deterministic; the null default makes instrumentation free.
        self.metrics = metrics if metrics is not None else NULL_METRICS

    # -------------------------------------------------------------- driving

    def run(self, max_events: int | None = None) -> float:
        """Start every actor, run to quiescence, return the makespan."""
        for node in self._nodes:
            self._execute(node, kind="start", msg=None)
        self.sim.run(max_events=max_events)
        if self.metrics.enabled:
            self._record_metrics()
        return self.makespan

    def _record_metrics(self) -> None:
        """Aggregate runtime and Ethernet measurements into the registry
        (per-tag send counts are bumped as messages leave the nodes)."""
        m = self.metrics
        m.inc("simnet.runs")
        m.inc("simnet.steps", sum(s.steps for s in self.node_stats))
        m.inc("simnet.msgs_sent", sum(s.msgs_sent for s in self.node_stats))
        m.inc(
            "simnet.msgs_received",
            sum(s.msgs_received for s in self.node_stats),
        )
        m.inc("simnet.bytes_sent", sum(s.bytes_sent for s in self.node_stats))
        m.observe("simnet.makespan_seconds", self.makespan)
        m.observe(
            "simnet.cpu_seconds_total",
            sum(s.cpu_seconds for s in self.node_stats),
        )
        eth = self.ethernet.stats
        m.inc("simnet.ethernet.frames", eth.frames)
        m.inc("simnet.ethernet.contended_frames", eth.contended_frames)
        m.inc("simnet.ethernet.payload_bytes", eth.payload_bytes)
        m.inc("simnet.ethernet.wire_bytes", eth.wire_bytes)
        m.inc("simnet.ethernet.broadcasts", eth.broadcasts)
        m.observe("simnet.ethernet.busy_seconds", eth.busy_seconds)
        m.observe("simnet.ethernet.contention_seconds", eth.contention_seconds)

    @property
    def makespan(self) -> float:
        return max(n.busy_until for n in self._nodes)

    # ------------------------------------------------------------ internals

    def _deliver(self, dst: int, msg: Message) -> None:
        node = self._nodes[dst]
        node.inbox.append(msg)
        self._ensure_scheduled(node)

    def _ensure_scheduled(self, node: _Node) -> None:
        if not node.scheduled:
            node.scheduled = True
            self.sim.schedule_at(
                max(self.sim.now, node.busy_until), self._step, node
            )

    def _step(self, node: _Node) -> None:
        node.scheduled = False
        if node.inbox:
            msg = node.inbox.popleft()
            self._execute(node, kind="message", msg=msg)
        elif node.timer_due:
            node.timer_due = False
            self._execute(node, kind="timer", msg=None)
        elif node.actor.has_local_work():
            self._execute(node, kind="idle", msg=None)
        if node.inbox or node.timer_due or node.actor.has_local_work():
            self._ensure_scheduled(node)

    # -------------------------------------------------------------- timers

    def _arm_timer(self, rank: int, delay: float) -> None:
        node = self._nodes[rank]
        node.timer_seq += 1
        node.timer_due = False
        self.sim.schedule(delay, self._fire_timer, node, node.timer_seq)

    def _cancel_timer(self, rank: int) -> None:
        node = self._nodes[rank]
        node.timer_seq += 1
        node.timer_due = False

    def _fire_timer(self, node: _Node, seq: int) -> None:
        if seq != node.timer_seq:
            return  # superseded or cancelled
        node.timer_due = True
        self._ensure_scheduled(node)

    def _execute(self, node: _Node, kind: str, msg: Message | None) -> None:
        ctx = Context(self, node.rank)
        stats = self.node_stats[node.rank]
        if kind == "message":
            ctx.charge(self.costs.msg_overhead_recv)
            stats.msgs_received += 1
            node.actor.on_message(ctx, msg)
        elif kind == "idle":
            node.actor.on_idle(ctx)
        elif kind == "timer":
            node.actor.on_timer(ctx)
        else:
            node.actor.on_start(ctx)
        start = max(self.sim.now, node.busy_until)
        charged = ctx._charged * self.node_speeds[node.rank]
        node.busy_until = start + charged
        stats.cpu_seconds += charged
        stats.steps += 1
        for out in ctx._outbox:
            stats.msgs_sent += 1
            stats.bytes_sent += out.size_bytes
            if self.metrics.enabled:
                # Per-tag traffic breakdown (what Tracer.render_tags shows,
                # now on the shared registry).
                self.metrics.inc("simnet.sent." + out.tag)
            self.sim.schedule_at(
                node.busy_until, self.ethernet.transmit, out.src, out.dst,
                out.size_bytes, out,
            )
        if kind == "start" and (node.inbox or node.actor.has_local_work()):
            self._ensure_scheduled(node)
