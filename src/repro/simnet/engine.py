"""Deterministic discrete-event simulation core.

Events are ordered by ``(time, sequence_number)`` so runs are exactly
reproducible: ties break in scheduling order.  The engine knows nothing
about processors or networks — those live in :mod:`repro.simnet.machine`
and :mod:`repro.simnet.ethernet` and schedule plain callbacks here.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on scheduling bugs (negative delays, running twice, ...)."""


class Simulator:
    """A minimal, fast event queue with a virtual clock in seconds."""

    def __init__(self):
        self.now: float = 0.0
        self._queue: list = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False

    def schedule(self, delay: float, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), fn, args))

    def schedule_at(self, when: float, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self.now}")
        heapq.heappush(self._queue, (when, next(self._seq), fn, args))

    def run(self, max_events: int | None = None) -> int:
        """Drain the event queue; returns the number of events processed.

        The queue running dry is global quiescence: no processor has work
        and no message is in flight.  ``max_events`` guards against
        protocol livelock in tests.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._queue:
                when, _, fn, args = heapq.heappop(self._queue)
                self.now = when
                fn(*args)
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; livelock?"
                    )
        finally:
            self._running = False
            self._events_processed += processed
        return processed

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        return len(self._queue)
