"""Message combining — the paper's central optimization.

Without combining, every parent notification (child finalized → tell the
parent's owner) is its own message, and the fixed per-message software
overhead plus per-frame wire overhead swamp the computation.  The
combining layer keeps one buffer per destination processor, appends
updates until the buffer holds ``capacity`` of them, and ships the whole
buffer as a single packet.  Buffers are force-flushed when the worker
runs out of local work so no update can be stranded (deadlock freedom;
termination detection counts packets, not updates).

``capacity=1`` degenerates to the naive one-message-per-update algorithm
and is exactly the "no combining" baseline of the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["UPDATE_BYTES", "UpdatePacket", "CombiningBuffers", "CombiningStats"]

#: Simulated wire size of one update: 4-byte position + 1-byte kind.
UPDATE_BYTES = 5


@dataclass
class UpdatePacket:
    """A combined batch of updates for one destination.

    ``kinds`` is an opaque one-byte tag per update.  The RA workers pack
    ``threshold << 1 | kind`` into it (kind 0 = child became WIN, so
    decrement the parent's counter; kind 1 = child became LOSS, so the
    parent can win) — see ``repro.core.parallel.worker.pack_kind``.
    """

    positions: np.ndarray
    kinds: np.ndarray

    @property
    def n_updates(self) -> int:
        return int(self.positions.shape[0])

    @property
    def size_bytes(self) -> int:
        return self.n_updates * UPDATE_BYTES


@dataclass
class CombiningStats:
    """Buffered-update accounting for one worker."""

    updates: int = 0
    packets: int = 0
    forced_flushes: int = 0
    capacity_flushes: int = 0

    @property
    def combining_factor(self) -> float:
        """Average updates per packet — the paper's headline overhead
        reduction."""
        return self.updates / self.packets if self.packets else 0.0


class CombiningBuffers:
    """Per-destination update buffers for one worker."""

    def __init__(self, n_dest: int, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if n_dest < 1:
            raise ValueError("need at least one destination")
        self.capacity = int(capacity)
        self.n_dest = int(n_dest)
        self._positions: list[list[np.ndarray]] = [[] for _ in range(n_dest)]
        self._kinds: list[list[np.ndarray]] = [[] for _ in range(n_dest)]
        self._counts = np.zeros(n_dest, dtype=np.int64)
        self.stats = CombiningStats()

    def pending(self, dest: int) -> int:
        return int(self._counts[dest])

    @property
    def total_pending(self) -> int:
        return int(self._counts.sum())

    def append(self, dest_of: np.ndarray, positions: np.ndarray, kinds: np.ndarray):
        """Buffer a batch of updates, yielding ``(dest, packet)`` for every
        buffer that reaches capacity.

        The batch is split by destination with one vectorized pass.
        """
        dest_of = np.asarray(dest_of, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.int64)
        kinds = np.asarray(kinds, dtype=np.uint8)
        if not (dest_of.shape == positions.shape == kinds.shape):
            raise ValueError("mismatched update batch arrays")
        if dest_of.shape[0] == 0:
            return []
        self.stats.updates += int(dest_of.shape[0])
        order = np.argsort(dest_of, kind="stable")
        sorted_dest = dest_of[order]
        bounds = np.flatnonzero(np.diff(sorted_dest)) + 1
        ready = []
        for chunk_idx, chunk_pos in zip(
            np.split(sorted_dest, bounds), np.split(order, bounds)
        ):
            dest = int(chunk_idx[0])
            self._positions[dest].append(positions[chunk_pos])
            self._kinds[dest].append(kinds[chunk_pos])
            self._counts[dest] += chunk_pos.shape[0]
            while self._counts[dest] >= self.capacity:
                ready.append((dest, self._pop(dest, self.capacity)))
                self.stats.capacity_flushes += 1
        return ready

    def _pop(self, dest: int, limit: int) -> UpdatePacket:
        pos = np.concatenate(self._positions[dest])
        kin = np.concatenate(self._kinds[dest])
        take = min(limit, pos.shape[0])
        packet = UpdatePacket(positions=pos[:take].copy(), kinds=kin[:take].copy())
        rest_p, rest_k = pos[take:], kin[take:]
        self._positions[dest] = [rest_p] if rest_p.size else []
        self._kinds[dest] = [rest_k] if rest_k.size else []
        self._counts[dest] = rest_p.shape[0]
        self.stats.packets += 1
        return packet

    def flush_fullest(self):
        """Force-flush the single fullest buffer (incremental drain).

        Called one buffer per idle step: if remote updates refill the
        frontier in the meantime, the remaining buffers keep combining
        instead of being scattered as near-empty packets.
        """
        if self.total_pending == 0:
            return []
        dest = int(np.argmax(self._counts))
        self.stats.forced_flushes += 1
        return [(dest, self._pop(dest, self.capacity))]

    def flush_all(self):
        """Drain every non-empty buffer (end-of-phase safety net)."""
        ready = []
        for dest in range(self.n_dest):
            while self._counts[dest] > 0:
                ready.append((dest, self._pop(dest, self.capacity)))
                self.stats.forced_flushes += 1
        return ready
