"""Per-database move-graph construction for capture games.

For one database of a :class:`~repro.games.base.CaptureGame` this module
separates each position's moves into

* a single **best exit** — the maximum over capturing moves (and the
  terminal rule) of ``capture - value(successor in a smaller database)``;
  thanks to the threshold formulation only the maximum is ever needed; and
* the **internal graph** — non-capturing moves within the database,
  stored as forward CSR adjacency plus its transpose for retrograde
  propagation.

The scan is chunked so peak memory stays bounded, and all inner work is
vectorized (millions of positions in plain Python would be hopeless
otherwise; see the HPC guides).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..games.base import CaptureGame
from .values import NO_EXIT

__all__ = [
    "CSR",
    "ChunkParts",
    "DatabaseGraph",
    "build_database_graph",
    "scan_chunk_to_parts",
    "WorkCounters",
]


@dataclass
class CSR:
    """Compressed sparse row adjacency: ``indices[indptr[i]:indptr[i+1]]``."""

    indptr: np.ndarray
    indices: np.ndarray

    @property
    def n_edges(self) -> int:
        return int(self.indices.shape[0])

    def neighbors_of(self, idx: np.ndarray):
        """Batch gather: returns ``(row, neighbor)`` pairs with multiplicity.

        ``row[k]`` indexes into ``idx``; parallel edges appear once per
        edge, which the RA counters rely on.
        """
        idx = np.asarray(idx, dtype=np.int64)
        starts = self.indptr[idx]
        counts = self.indptr[idx + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        row = np.repeat(np.arange(idx.shape[0], dtype=np.int64), counts)
        # Offsets within each run: arange(total) - run starts, shifted.
        run_starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        offsets = np.arange(total, dtype=np.int64) - np.repeat(run_starts, counts)
        flat = np.repeat(starts, counts) + offsets
        return row, self.indices[flat]

    @staticmethod
    def from_edges(n: int, src: np.ndarray, dst: np.ndarray) -> "CSR":
        """Build CSR from an edge list (counting sort, O(E))."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(src, kind="stable")
        return CSR(indptr=indptr, indices=dst[order])

    def transpose(self, n: int) -> "CSR":
        """Reverse adjacency over ``n`` nodes.

        ``n`` must cover both endpoints of every edge — at least the
        ``indptr.size - 1`` source rows, and every destination in
        ``indices`` — otherwise the reverse adjacency would silently
        drop nodes or edges.
        """
        n_rows = int(self.indptr.shape[0]) - 1
        if n < n_rows:
            raise ValueError(
                f"transpose over {n} nodes cannot hold the {n_rows} "
                f"source rows of this CSR"
            )
        if self.indices.size and int(self.indices.max()) >= n:
            raise ValueError(
                f"transpose over {n} nodes: destination index "
                f"{int(self.indices.max())} is out of range"
            )
        src = np.repeat(
            np.arange(self.indptr.shape[0] - 1, dtype=np.int64),
            np.diff(self.indptr),
        )
        return CSR.from_edges(n, self.indices, src)


@dataclass
class WorkCounters:
    """Operation counts accumulated while building/solving a database.

    These are the units the calibrated 1995 cost model converts into
    simulated seconds (:mod:`repro.analysis.calibration`).
    """

    positions_scanned: int = 0
    moves_generated: int = 0
    edges_internal: int = 0
    exit_lookups: int = 0

    def merge(self, other: "WorkCounters") -> None:
        self.positions_scanned += other.positions_scanned
        self.moves_generated += other.moves_generated
        self.edges_internal += other.edges_internal
        self.exit_lookups += other.exit_lookups


@dataclass
class DatabaseGraph:
    """Solver-ready view of one capture-game database."""

    db_id: object
    size: int
    best_exit: np.ndarray  # (size,) int16, NO_EXIT where none
    out_degree: np.ndarray  # (size,) int32: number of internal moves
    forward: CSR
    reverse: CSR
    work: WorkCounters

    def memory_bytes(self) -> int:
        """Bytes held by the construction-time state (the paper's memory
        bottleneck: this is what gets distributed over processors)."""
        return (
            self.best_exit.nbytes
            + self.out_degree.nbytes
            + self.forward.indptr.nbytes
            + self.forward.indices.nbytes
            + self.reverse.indptr.nbytes
            + self.reverse.indices.nbytes
        )


@dataclass
class ChunkParts:
    """One scanned chunk reduced to solver-ready graph parts.

    ``best_exit``/``out_degree`` are chunk-local (length ``stop - start``,
    positions ``start + i``); ``src``/``dst`` carry *global* position
    indices, emitted in (position, move-slot) order so concatenating
    chunks in scan order reproduces the unchunked edge list exactly.
    The work counts follow :class:`WorkCounters` semantics:
    ``moves_generated`` counts every legal move of the chunk and
    ``exit_lookups`` every capturing move whose successor value was
    looked up in a lower database.
    """

    start: int
    best_exit: np.ndarray  # (stop-start,) int16, NO_EXIT where none
    out_degree: np.ndarray  # (stop-start,) int32
    src: np.ndarray  # (E,) int64 global internal-edge sources
    dst: np.ndarray  # (E,) int64 global internal-edge destinations
    moves_generated: int
    exit_lookups: int

    @property
    def n_edges(self) -> int:
        return int(self.src.shape[0])


def scan_chunk_to_parts(
    game: CaptureGame, db_id, lower_values: Mapping, start: int, stop: int
) -> ChunkParts:
    """Scan positions ``start <= i < stop`` of ``db_id`` into graph parts.

    The single implementation of the terminal/capture/internal move
    handling, shared by :func:`build_database_graph` and both fan-out
    paths of :class:`~repro.core.multiproc.MultiprocessSolver`, so the
    scan semantics (and the work counters) cannot drift between the
    sequential and multiprocess backends.
    """
    scan = game.scan_chunk(db_id, start, stop)
    n = stop - start
    best_exit = np.full(n, NO_EXIT, dtype=np.int16)
    out_degree = np.zeros(n, dtype=np.int32)
    moves_generated = int(scan.legal.sum())
    exit_lookups = 0
    # Terminal rule: an immediate, exact exit value.
    term = scan.terminal
    best_exit[term] = scan.terminal_value[term]
    # Capturing moves: exits into smaller databases.
    cap_mask = scan.legal & (scan.capture > 0)
    if cap_mask.any():
        r, c = np.nonzero(cap_mask)
        caps = scan.capture[r, c]
        succ = scan.succ_index[r, c]
        vals = np.empty(r.shape[0], dtype=np.int64)
        for amount in np.unique(caps):
            m = caps == amount
            target = game.exit_db(db_id, int(amount))
            vals[m] = amount - lower_values[target][succ[m]].astype(np.int64)
        exit_lookups = int(r.shape[0])
        np.maximum.at(best_exit, r, vals.astype(np.int16))
    # Internal (non-capturing) moves.
    int_mask = scan.legal & (scan.capture == 0)
    r, c = np.nonzero(int_mask)
    np.add.at(out_degree, r, 1)
    return ChunkParts(
        start=start,
        best_exit=best_exit,
        out_degree=out_degree,
        src=r.astype(np.int64) + start,
        dst=scan.succ_index[r, c],
        moves_generated=moves_generated,
        exit_lookups=exit_lookups,
    )


def build_database_graph(
    game: CaptureGame,
    db_id,
    lower_values: Mapping,
    chunk: int = 1 << 15,
) -> DatabaseGraph:
    """Scan database ``db_id`` and build its :class:`DatabaseGraph`.

    ``lower_values`` maps already-solved database ids to their value
    arrays; every capturing move is folded into ``best_exit`` here.
    """
    size = game.db_size(db_id)
    best_exit = np.full(size, NO_EXIT, dtype=np.int16)
    out_degree = np.zeros(size, dtype=np.int32)
    srcs, dsts = [], []
    work = WorkCounters()
    for start in range(0, size, chunk):
        stop = min(start + chunk, size)
        parts = scan_chunk_to_parts(game, db_id, lower_values, start, stop)
        work.positions_scanned += stop - start
        work.moves_generated += parts.moves_generated
        work.exit_lookups += parts.exit_lookups
        best_exit[start:stop] = parts.best_exit
        out_degree[start:stop] = parts.out_degree
        srcs.append(parts.src)
        dsts.append(parts.dst)
    src = np.concatenate(srcs) if srcs else np.zeros(0, dtype=np.int64)
    dst = np.concatenate(dsts) if dsts else np.zeros(0, dtype=np.int64)
    forward = CSR.from_edges(size, src, dst)
    reverse = CSR.from_edges(size, dst, src)
    work.edges_internal = forward.n_edges
    return DatabaseGraph(
        db_id=db_id,
        size=size,
        best_exit=best_exit,
        out_degree=out_degree,
        forward=forward,
        reverse=reverse,
        work=work,
    )
