"""Driver for the parallel retrograde-analysis solver.

Builds the simulated cluster, runs one SPMD job per database, and
collects per-run statistics (simulated makespan, message traffic,
combining factors, Ethernet utilization, modeled memory).  The databases
produced are asserted by the test suite to be bit-identical to the
sequential solver's — the simulation changes *when* things happen, never
*what* is computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ...games.base import CaptureGame
from ...obs import NULL_METRICS
from ...simnet.costs import CostModel, DEFAULT_COSTS
from ...simnet.ethernet import EthernetConfig
from ...simnet.rts import SPMDRuntime
from ..graph import build_database_graph
from ..partition import make_partition
from .worker import RAWorker, WorkerConfig

__all__ = ["ParallelConfig", "DatabaseRunStats", "ParallelSolver"]


@dataclass(frozen=True)
class ParallelConfig:
    """Cluster and algorithm knobs for a parallel solve."""

    n_procs: int = 8
    combining_capacity: int = 256
    partition: str = "cyclic"
    predecessor_mode: str = "unmove"  # "unmove" | "unmove-cached" | "csr"
    work_batch: int = 1024
    scan_batch: int = 4096
    flush_linger: float = 5e-3
    token_interval: float = 50e-3
    costs: CostModel = DEFAULT_COSTS
    ethernet: EthernetConfig = field(default_factory=EthernetConfig)
    #: Optional per-node slowdown factors (heterogeneous pool ablation).
    node_speeds: tuple | None = None

    def without_combining(self) -> "ParallelConfig":
        """The naive one-message-per-update baseline."""
        return replace(self, combining_capacity=1)


@dataclass
class DatabaseRunStats:
    """Measurements of one simulated parallel database construction."""

    db_id: object
    n_procs: int
    size: int
    makespan_seconds: float
    cpu_seconds_per_node: list
    packets_sent: int
    updates_sent: int
    updates_local: int
    bytes_sent: int
    control_messages: int
    token_rounds: int
    ethernet_busy_seconds: float
    ethernet_frames: int
    combining_factor: float
    memory_modeled_bytes_per_node: list
    events: int

    @property
    def cpu_seconds_total(self) -> float:
        return float(sum(self.cpu_seconds_per_node))

    @property
    def ethernet_utilization(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return min(self.ethernet_busy_seconds / self.makespan_seconds, 1.0)

    @property
    def load_imbalance(self) -> float:
        cpu = np.asarray(self.cpu_seconds_per_node)
        mean = cpu.mean()
        return float(cpu.max() / mean) if mean > 0 else 1.0


class ParallelSolver:
    """Distributed RA over a simulated Ethernet cluster."""

    def __init__(
        self,
        game: CaptureGame,
        config: ParallelConfig | None = None,
        metrics=None,
    ):
        self.game = game
        self.config = config or ParallelConfig()
        #: Metrics registry (``parallel.`` prefix; the simulated runtime
        #: reports through the same registry under ``simnet.``).
        self.metrics = metrics if metrics is not None else NULL_METRICS

    def solve_database(
        self, db_id, lower_values: dict, max_events: int | None = None
    ) -> tuple[np.ndarray, DatabaseRunStats]:
        """Run one simulated parallel database construction."""
        with self.metrics.phase("parallel.host_wall_seconds"):
            return self._solve_database(db_id, lower_values, max_events)

    def _solve_database(self, db_id, lower_values, max_events):
        cfg = self.config
        graph = build_database_graph(self.game, db_id, lower_values)
        partition = make_partition(cfg.partition, graph.size, cfg.n_procs)
        bound = self.game.value_bound(db_id)
        lower_bytes = sum(int(v.shape[0]) for v in lower_values.values())
        worker_cfg = WorkerConfig(
            combining_capacity=cfg.combining_capacity,
            work_batch=cfg.work_batch,
            scan_batch=cfg.scan_batch,
            predecessor_mode=cfg.predecessor_mode,
            flush_linger=cfg.flush_linger,
            token_interval=cfg.token_interval,
            costs=cfg.costs,
        )
        workers = [
            RAWorker(
                rank=r,
                game=self.game,
                db_id=db_id,
                graph=graph,
                partition=partition,
                bound=bound,
                config=worker_cfg,
                lower_values_bytes=lower_bytes,
            )
            for r in range(cfg.n_procs)
        ]
        runtime = SPMDRuntime(
            workers,
            costs=cfg.costs,
            ethernet_config=cfg.ethernet,
            node_speeds=list(cfg.node_speeds) if cfg.node_speeds else None,
            metrics=self.metrics,
        )
        makespan = runtime.run(max_events=max_events)

        # Gather the distributed shards into the canonical value array.
        values = np.zeros(graph.size, dtype=np.int16)
        if bound == 0:
            values[:] = np.where(
                graph.best_exit == np.iinfo(np.int16).min, 0, graph.best_exit
            )
        else:
            for w in workers:
                idx, vals = w.local_values()
                values[idx] = vals

        stats = self._collect_stats(db_id, graph.size, runtime, workers, makespan)
        return values, stats

    def solve(self, target, max_events: int | None = None):
        """Solve all databases up to ``target``; returns (values, [stats])."""
        values: dict = {}
        all_stats = []
        for db_id in self.game.db_sequence(target):
            vals, stats = self.solve_database(db_id, values, max_events=max_events)
            values[db_id] = vals
            all_stats.append(stats)
        return values, all_stats

    # ------------------------------------------------------------- helpers

    def _collect_stats(self, db_id, size, runtime, workers, makespan):
        node_stats = runtime.node_stats
        counters = [s.counters for s in node_stats]

        def total(name):
            return sum(c.get(name, 0) for c in counters)

        packets = total("packets_sent")
        updates_sent = total("updates_sent")
        app_msgs = packets
        all_msgs = sum(s.msgs_sent for s in node_stats)
        combining = [w.buffers.stats for w in workers]
        combined_updates = sum(c.updates for c in combining)
        combined_packets = sum(c.packets for c in combining)
        stats = DatabaseRunStats(
            db_id=db_id,
            n_procs=runtime.n_nodes,
            size=size,
            makespan_seconds=makespan,
            cpu_seconds_per_node=[s.cpu_seconds for s in node_stats],
            packets_sent=packets,
            updates_sent=updates_sent,
            updates_local=total("updates_local"),
            bytes_sent=sum(s.bytes_sent for s in node_stats),
            control_messages=all_msgs - app_msgs,
            token_rounds=total("token_rounds"),
            ethernet_busy_seconds=runtime.ethernet.stats.busy_seconds,
            ethernet_frames=runtime.ethernet.stats.frames,
            combining_factor=(
                combined_updates / combined_packets if combined_packets else 0.0
            ),
            memory_modeled_bytes_per_node=[
                w.memory_modeled_bytes() for w in workers
            ],
            events=runtime.sim.events_processed,
        )
        m = self.metrics
        if m.enabled:
            m.inc("parallel.databases")
            m.inc("parallel.packets_sent", stats.packets_sent)
            m.inc("parallel.updates_sent", stats.updates_sent)
            m.inc("parallel.updates_local", stats.updates_local)
            m.inc("parallel.bytes_sent", stats.bytes_sent)
            m.inc("parallel.control_messages", stats.control_messages)
            m.inc("parallel.token_rounds", stats.token_rounds)
            m.inc("parallel.events", stats.events)
            # Combining counters mirror the workers' CombiningStats exactly
            # (asserted in tests): the registry is the one surface the
            # benchmarks and the paper-table tooling need to read.
            m.inc("parallel.combining.updates", combined_updates)
            m.inc("parallel.combining.packets", combined_packets)
            m.inc(
                "parallel.combining.forced_flushes",
                sum(c.forced_flushes for c in combining),
            )
            m.inc(
                "parallel.combining.capacity_flushes",
                sum(c.capacity_flushes for c in combining),
            )
            m.set_gauge("parallel.n_procs", stats.n_procs)
            m.set_gauge("parallel.combining_factor", stats.combining_factor)
            m.observe("parallel.makespan_seconds", stats.makespan_seconds)
            m.observe("parallel.cpu_seconds_total", stats.cpu_seconds_total)
            m.observe("parallel.load_imbalance", stats.load_imbalance)
            m.observe("parallel.db_positions", stats.size)
        return stats
