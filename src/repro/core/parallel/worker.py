"""The distributed retrograde-analysis worker (one per simulated processor).

Each worker owns a partition of the database under construction and runs
the paper's algorithm:

1. **Scan** its owned positions: compute each position's best exit
   against the (replicated) smaller databases and its internal out-degree.
   In ``csr`` mode the internal edges are then exchanged so that every
   worker holds the *predecessor* lists of its owned positions.
2. **Propagate**: every value level (threshold ``t = 1..n``) is seeded
   from the exits and then propagated in a *single* asynchronous pass —
   exactly as the original single-pass algorithm carried position values
   in its update messages.  Finalizing an owned position generates its
   predecessors (by un-moving); updates to local parents apply directly,
   remote ones are routed through the **message-combining buffers**.
   Partial buffers are force-flushed only after a short idle linger, so
   combining survives the lulls between dependency waves.
3. Detect global quiescence with Safra's token ring; the coordinator
   (rank 0) then moves everyone to the assemble phase.
4. **Assemble**: harvest the per-threshold labels into values and
   broadcast the shard so every machine holds the full database for the
   next stone count (the broadcast carries timing/bytes; the canonical
   value arrays are collected by the driver).

All heavy steps are vectorized; CPU time is charged through the
:class:`~repro.simnet.costs.CostModel` so the simulated clock reflects a
1995 C implementation rather than this Python one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ...simnet.costs import CostModel
from ...simnet.rts import Actor, Context, Message
from ..combining import CombiningBuffers
from ..graph import DatabaseGraph
from ..partition import Partition
from ..termination import SafraState, Token
from ..values import LOSS, UNKNOWN, WIN

__all__ = ["WorkerConfig", "RAWorker", "KIND_DEC", "KIND_WIN", "pack_kind", "unpack_kind"]

#: Update kinds carried in packets.
KIND_DEC = 0  # child became WIN: decrement the parent's counter
KIND_WIN = 1  # child became LOSS: the parent has a winning move

_PHASE_INIT = "init"
_PHASE_RUN = "run"
_PHASE_ASSEMBLE = "assemble"
_PHASE_DONE = "done"

#: Simulated sizes (bytes) of control messages and per-item payloads.
_CTRL_BYTES = 16
_EDGE_BYTES = 8


def pack_kind(threshold: np.ndarray, kind: np.ndarray) -> np.ndarray:
    """Pack (threshold, kind) into the one-byte tag carried per update."""
    return (np.asarray(threshold, dtype=np.uint8) << np.uint8(1)) | np.asarray(
        kind, dtype=np.uint8
    )


def unpack_kind(packed: np.ndarray):
    """Inverse of :func:`pack_kind`: returns (threshold, kind)."""
    packed = np.asarray(packed, dtype=np.uint8)
    return packed >> np.uint8(1), packed & np.uint8(1)


@dataclass
class WorkerConfig:
    """Per-run knobs shared by all workers."""

    combining_capacity: int = 256
    work_batch: int = 1024
    scan_batch: int = 4096
    predecessor_mode: str = "unmove"  # "unmove" | "unmove-cached" | "csr"
    #: How long a worker lingers before force-flushing partial buffers.
    #: While remote updates keep arriving faster than this, buffers only
    #: leave when full — the behaviour that makes combining effective.
    flush_linger: float = 5e-3
    #: Coordinator pause between termination-detection rounds.
    token_interval: float = 50e-3
    costs: CostModel = field(default_factory=CostModel)

    def __post_init__(self):
        if self.predecessor_mode not in ("unmove", "unmove-cached", "csr"):
            raise ValueError(
                f"unknown predecessor_mode {self.predecessor_mode!r}"
            )


class RAWorker(Actor):
    """One SPMD worker; see the module docstring for the protocol."""

    def __init__(
        self,
        rank: int,
        game,
        db_id,
        graph: DatabaseGraph,
        partition: Partition,
        bound: int,
        config: WorkerConfig,
        lower_values_bytes: int = 0,
    ):
        self.rank = rank
        self.game = game
        self.db_id = db_id
        self.graph = graph
        self.partition = partition
        self.bound = bound
        self.config = config
        self.size = partition.n_parts
        self.lower_values_bytes = lower_values_bytes

        self.own_global = partition.local_indices(rank)
        self.n_local = int(self.own_global.shape[0])
        # Owned slices of the (host-precomputed) scan results; the scan
        # phase charges the simulated cost of producing them.
        self.best_exit = graph.best_exit[self.own_global].astype(np.int32)
        self.out_degree = graph.out_degree[self.own_global].astype(np.int32)
        self.values = np.zeros(self.n_local, dtype=np.int16)
        # Per-threshold propagation state, all levels live at once (row 0
        # unused; thresholds are 1-based).
        self.status = np.zeros((bound + 1, self.n_local), dtype=np.uint8)
        self.counts = np.zeros((bound + 1, self.n_local), dtype=np.int32)

        #: Frontier of freshly finalized (threshold, local slots) batches.
        self.frontier: deque = deque()
        self.buffers = CombiningBuffers(self.size, config.combining_capacity)
        self.safra = SafraState(rank, self.size)

        self.phase = _PHASE_INIT
        self._scan_done = 0
        self._edges_expected = self.size - 1
        self._edges_received = 0
        self._values_expected = self.size - 1
        self._values_received = 0
        self._timer_armed = False
        # Coordinator-only state.
        self._init_done = 0
        self._assemble_done = 0
        self._token_outstanding = False

    # --------------------------------------------------------------- hooks

    def on_start(self, ctx: Context) -> None:
        if self.n_local == 0:
            # Degenerate shard: jump straight to the exchange/end of scan.
            self._finish_scan(ctx)

    def has_local_work(self) -> bool:
        if self.phase == _PHASE_INIT:
            return self._scan_done < self.n_local
        if self.phase == _PHASE_RUN:
            return bool(self.frontier)
        return False

    def on_idle(self, ctx: Context) -> None:
        if self.phase == _PHASE_INIT:
            self._scan_step(ctx)
        elif self.phase == _PHASE_RUN and self.frontier:
            self._process_batch(ctx)
        self._after_step(ctx)

    def on_message(self, ctx: Context, msg: Message) -> None:
        handler = getattr(self, f"_msg_{msg.tag.lower()}", None)
        if handler is None:
            raise RuntimeError(f"rank {self.rank}: unknown message {msg.tag}")
        handler(ctx, msg)
        self._after_step(ctx)

    def on_timer(self, ctx: Context) -> None:
        """Linger expired: a genuine lull.  Ship the partial buffers,
        release a held token, and (coordinator) probe for termination."""
        self._timer_armed = False
        if self.phase != _PHASE_RUN or self.frontier:
            return
        if self.buffers.total_pending:
            self._send_packets(ctx, self.buffers.flush_all())
        if self.safra.held_token is not None:
            self._dispose_token(ctx, self.safra.release())
        if (
            self.rank == 0
            and self.phase == _PHASE_RUN
            and not self.frontier
            and not self._token_outstanding
        ):
            self._start_token_round(ctx)

    def _after_step(self, ctx: Context) -> None:
        """Idle-state bookkeeping shared by every step kind.

        With frontier work pending nothing happens (the idle loop runs).
        Otherwise: pending buffers arm the flush linger; with everything
        drained a held token moves on immediately and the coordinator
        schedules its next termination probe."""
        if self.phase != _PHASE_RUN:
            return
        if self.frontier:
            if self._timer_armed:
                ctx.cancel_timer()
                self._timer_armed = False
            return
        if self.buffers.total_pending:
            if not self._timer_armed:
                ctx.set_timer(self.config.flush_linger)
                self._timer_armed = True
            return
        if self.safra.held_token is not None:
            self._dispose_token(ctx, self.safra.release())
        if (
            self.rank == 0
            and self.phase == _PHASE_RUN
            and not self.frontier
            and not self._token_outstanding
            and not self._timer_armed
        ):
            ctx.set_timer(self.config.token_interval)
            self._timer_armed = True

    # ---------------------------------------------------------------- scan

    def _scan_step(self, ctx: Context) -> None:
        stop = min(self._scan_done + self.config.scan_batch, self.n_local)
        n = stop - self._scan_done
        ctx.charge(n * self.config.costs.scan_position)
        ctx.stats.bump("positions_scanned", n)
        self._scan_done = stop
        if self._scan_done >= self.n_local:
            self._finish_scan(ctx)

    def _finish_scan(self, ctx: Context) -> None:
        if self.config.predecessor_mode == "csr":
            self._exchange_edges(ctx)
        else:
            self._send_init_done(ctx)

    def _exchange_edges(self, ctx: Context) -> None:
        """Ship every discovered internal edge to the owner of its child —
        the distributed graph transpose that the ``csr`` variant pays for
        up front (size-only messages; the host holds the actual arrays)."""
        _, children = self.graph.forward.neighbors_of(self.own_global)
        owners = self.partition.owner_of(children)
        per_dest = np.bincount(owners, minlength=self.size)
        for dest in range(self.size):
            if dest == self.rank:
                continue
            ctx.send(
                dest,
                "EDGES",
                payload=int(per_dest[dest]),
                size_bytes=max(_CTRL_BYTES, int(per_dest[dest]) * _EDGE_BYTES),
            )
        ctx.stats.bump("edges_shipped", int(per_dest.sum() - per_dest[self.rank]))
        self.phase = "await_edges"
        self._check_edges_complete(ctx)

    def _msg_edges(self, ctx: Context, msg: Message) -> None:
        self._edges_received += 1
        # Insert the received parent links into the local reverse shard.
        ctx.charge(int(msg.payload) * self.config.costs.update_apply)
        self._check_edges_complete(ctx)

    def _check_edges_complete(self, ctx: Context) -> None:
        if (
            self.phase == "await_edges"
            and self._edges_received >= self._edges_expected
        ):
            self._send_init_done(ctx)

    def _send_init_done(self, ctx: Context) -> None:
        self.phase = "await_phase"
        if self.rank == 0:
            self._note_init_done(ctx)
        else:
            ctx.send(0, "INIT_DONE", size_bytes=_CTRL_BYTES)

    def _msg_init_done(self, ctx: Context, msg: Message) -> None:
        self._note_init_done(ctx)

    def _note_init_done(self, ctx: Context) -> None:
        self._init_done += 1
        if self._init_done >= self.size:
            ctx.broadcast("PHASE", payload="run", size_bytes=_CTRL_BYTES)
            self._begin_run(ctx)

    # --------------------------------------------------------------- phase

    def _msg_phase(self, ctx: Context, msg: Message) -> None:
        if msg.payload == "run":
            self._begin_run(ctx)
        else:
            self._begin_assemble(ctx)

    def _begin_run(self, ctx: Context) -> None:
        """Seed every threshold's initial labels from the exits and enter
        the single propagation phase."""
        self.phase = _PHASE_RUN
        self.safra.reset()
        self._token_outstanding = False
        degree0 = self.out_degree == 0
        for t in range(1, self.bound + 1):
            win0 = self.best_exit >= t
            loss0 = (self.best_exit <= -t) & degree0
            row = self.status[t]
            row[win0] = WIN
            row[loss0] = LOSS
            np.copyto(self.counts[t], self.out_degree)
            seed = np.flatnonzero(win0 | loss0)
            if seed.size:
                self.frontier.append((t, seed))
        ctx.charge(
            self.bound * self.n_local * self.config.costs.threshold_init_position
        )
        ctx.stats.bump("thresholds_run", self.bound)

    def _begin_assemble(self, ctx: Context) -> None:
        # Harvest ascending so higher thresholds overwrite lower ones.
        for t in range(1, self.bound + 1):
            self.values[self.status[t] == WIN] = t
            self.values[self.status[t] == LOSS] = -t
        ctx.charge(
            self.bound * self.n_local * self.config.costs.value_assemble_position
        )
        self.phase = _PHASE_ASSEMBLE
        # Broadcast this worker's value shard (one byte per position on the
        # wire, as the 1995 implementation packed them).
        ctx.broadcast(
            "VALUES", payload=self.rank, size_bytes=max(_CTRL_BYTES, self.n_local)
        )
        ctx.stats.bump("values_broadcast_bytes", self.n_local)
        self._check_assemble_complete(ctx)

    def _msg_values(self, ctx: Context, msg: Message) -> None:
        self._values_received += 1
        ctx.charge(msg.size_bytes * self.config.costs.marshal_per_byte)
        self._check_assemble_complete(ctx)

    def _check_assemble_complete(self, ctx: Context) -> None:
        if (
            self.phase == _PHASE_ASSEMBLE
            and self._values_received >= self._values_expected
        ):
            self.phase = "await_done"
            if self.rank == 0:
                self._note_assemble_done(ctx)
            else:
                ctx.send(0, "ASSEMBLE_DONE", size_bytes=_CTRL_BYTES)

    def _msg_assemble_done(self, ctx: Context, msg: Message) -> None:
        self._note_assemble_done(ctx)

    def _note_assemble_done(self, ctx: Context) -> None:
        self._assemble_done += 1
        if self._assemble_done >= self.size:
            ctx.broadcast("DB_DONE", size_bytes=_CTRL_BYTES)
            self.phase = _PHASE_DONE

    def _msg_db_done(self, ctx: Context, msg: Message) -> None:
        self.phase = _PHASE_DONE

    # --------------------------------------------------------- propagation

    def _predecessors(self, children_global: np.ndarray):
        mode = self.config.predecessor_mode
        if mode == "unmove":
            return self.game.predecessors_internal(self.db_id, children_global)
        # Cached/CSR modes read the host-side transposed graph; in
        # "unmove-cached" the *charges* still model run-time un-moving.
        return self.graph.reverse.neighbors_of(children_global)

    def _generate_cost(self) -> float:
        if self.config.predecessor_mode == "csr":
            return self.config.costs.update_generate_fast
        return self.config.costs.update_generate

    def _process_batch(self, ctx: Context) -> None:
        threshold, slots = self.frontier.popleft()
        if slots.shape[0] > self.config.work_batch:
            self.frontier.appendleft((threshold, slots[self.config.work_batch :]))
            slots = slots[: self.config.work_batch]
        children_global = self.own_global[slots]
        kinds = (self.status[threshold][slots] == LOSS).astype(np.uint8)
        child_row, parents_global = self._predecessors(children_global)
        ctx.charge(
            slots.shape[0] * self.config.costs.threshold_init_position
            + parents_global.shape[0] * self._generate_cost()
        )
        ctx.stats.bump("updates_generated", int(parents_global.shape[0]))
        if parents_global.size == 0:
            return
        packed = pack_kind(np.full(child_row.shape[0], threshold), kinds[child_row])
        owners = self.partition.owner_of(parents_global)
        local = owners == self.rank
        if local.any():
            self._apply_updates(
                ctx,
                self.partition.to_local(parents_global[local]),
                packed[local],
            )
            ctx.stats.bump("updates_local", int(local.sum()))
        remote = ~local
        if remote.any():
            ready = self.buffers.append(
                owners[remote], parents_global[remote], packed[remote]
            )
            self._send_packets(ctx, ready)

    def _apply_updates(self, ctx: Context, slots: np.ndarray, packed: np.ndarray):
        """Apply a batch of updates to owned positions (vectorized; WIN
        notifications take priority over counter exhaustion, mirroring the
        sequential kernel)."""
        ctx.charge(slots.shape[0] * self.config.costs.update_apply)
        ctx.stats.bump("updates_applied", int(slots.shape[0]))
        thresholds, kinds = unpack_kind(packed)
        for t in np.unique(thresholds):
            sel = thresholds == t
            self._apply_threshold(int(t), slots[sel], kinds[sel])

    def _apply_threshold(self, t: int, slots: np.ndarray, kinds: np.ndarray):
        status = self.status[t]
        counts = self.counts[t]
        win_slots = slots[kinds == KIND_WIN]
        if win_slots.size:
            new_win = np.unique(win_slots[status[win_slots] == UNKNOWN])
            if new_win.size:
                status[new_win] = WIN
                self.frontier.append((t, new_win))
        dec_slots = slots[kinds == KIND_DEC]
        if dec_slots.size:
            np.subtract.at(counts, dec_slots, 1)
            zeroed = np.unique(dec_slots)
            new_loss = zeroed[
                (counts[zeroed] == 0)
                & (status[zeroed] == UNKNOWN)
                & (self.best_exit[zeroed] <= -t)
            ]
            if new_loss.size:
                status[new_loss] = LOSS
                self.frontier.append((t, new_loss))

    def _send_packets(self, ctx: Context, ready) -> None:
        for dest, packet in ready:
            ctx.send(dest, "UPDATE", payload=packet, size_bytes=packet.size_bytes)
            self.safra.on_app_send()
            ctx.stats.bump("packets_sent")
            ctx.stats.bump("updates_sent", packet.n_updates)

    def _msg_update(self, ctx: Context, msg: Message) -> None:
        self.safra.on_app_receive()
        packet = msg.payload
        self._apply_updates(
            ctx, self.partition.to_local(packet.positions), packet.kinds
        )

    # --------------------------------------------------------- termination

    def _start_token_round(self, ctx: Context) -> None:
        self._token_outstanding = True
        token = self.safra.start_round()
        ctx.send(self.safra.next_rank(), "TOKEN", payload=token,
                 size_bytes=_CTRL_BYTES)
        ctx.stats.bump("token_rounds")

    def _msg_token(self, ctx: Context, msg: Message) -> None:
        token: Token = msg.payload
        if self.frontier or self.buffers.total_pending:
            self.safra.hold(token)
            return
        self._dispose_token(ctx, token)

    def _dispose_token(self, ctx: Context, token: Token) -> None:
        if self.rank == 0:
            self._token_outstanding = False
            if self.phase == _PHASE_RUN and self.safra.coordinator_check(token):
                ctx.broadcast("PHASE", payload="assemble", size_bytes=_CTRL_BYTES)
                self._begin_assemble(ctx)
            # Otherwise a fresh round starts from the idle bookkeeping.
        else:
            ctx.send(
                self.safra.next_rank(),
                "TOKEN",
                payload=self.safra.forward(token),
                size_bytes=_CTRL_BYTES,
            )

    # ------------------------------------------------------------- results

    def local_values(self) -> tuple[np.ndarray, np.ndarray]:
        """(global indices, values) of this worker's shard."""
        return self.own_global, self.values

    #: Construction-state bytes per position of the modeled 1995 layout:
    #: value, best exit, out-degree, status byte, 16-bit counter, plus
    #: amortized frontier-queue and bookkeeping entries.
    MODELED_BYTES_PER_POSITION = 12

    def memory_modeled_bytes(self) -> int:
        """Memory a 1995 C implementation would hold on this node:
        :data:`MODELED_BYTES_PER_POSITION` of construction state per owned
        position, 4 bytes per reverse edge in ``csr`` mode, plus the
        replicated smaller databases at one byte per position."""
        per_pos = self.MODELED_BYTES_PER_POSITION * self.n_local
        edges = 0
        if self.config.predecessor_mode == "csr":
            rev = self.graph.reverse
            edges = 4 * int(
                (rev.indptr[self.own_global + 1] - rev.indptr[self.own_global]).sum()
            )
        return per_pos + edges + self.lower_values_bytes
