"""The paper's contribution: distributed RA on the simulated cluster."""

from .driver import DatabaseRunStats, ParallelConfig, ParallelSolver
from .worker import KIND_DEC, KIND_WIN, RAWorker, WorkerConfig, pack_kind, unpack_kind

__all__ = [
    "ParallelConfig",
    "ParallelSolver",
    "DatabaseRunStats",
    "RAWorker",
    "WorkerConfig",
    "KIND_DEC",
    "KIND_WIN",
    "pack_kind",
    "unpack_kind",
]
