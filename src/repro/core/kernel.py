"""The retrograde-analysis propagation kernel.

One kernel serves every solver in the repository: the capture-difference
threshold runs (awari) and the classic win/draw/loss runs (nim, loopy
graphs) differ only in how the initial labels are produced.  The kernel
computes the least fixpoint of

* a position becomes **WIN** when one of its moves reaches a LOSS
  position (or its initial label says so, e.g. a sufficient exit);
* a position becomes **LOSS** when *every* internal move reaches a WIN
  position and no exit saves it.

Propagation is *level-synchronous*: each round finalizes a frontier and
notifies all predecessors in one vectorized batch.  The round at which a
position finalizes is recorded — for win/draw/loss games it equals the
distance-to-win/loss in plies, and the parallel solver reuses the same
round structure for its message traffic.

Predecessors are produced by a pluggable provider so the same kernel runs
from a precomputed transposed graph (fast) or from on-the-fly unmove
generation (the paper's memory-lean formulation); the two are
cross-checked in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Tuple

import numpy as np

from .graph import CSR, DatabaseGraph
from .values import LOSS, UNKNOWN, WIN

__all__ = [
    "RAProblem",
    "RAResult",
    "solve_kernel",
    "threshold_init",
    "csr_provider",
    "unmove_provider",
]

#: A predecessor provider maps finalized positions to (child_row, parent)
#: pairs, with one pair per move (parallel edges included).
PredecessorProvider = Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray]]


@dataclass
class RAProblem:
    """One least-fixpoint RA run over ``size`` positions.

    ``status``/``counts`` are consumed (mutated) by the solver; build a
    fresh problem per run.
    """

    size: int
    status: np.ndarray  # uint8, pre-seeded with initial WIN/LOSS labels
    counts: np.ndarray  # int32, internal out-degree of each position
    predecessors: PredecessorProvider
    loss_eligible: np.ndarray  # bool: may become LOSS when counter hits 0


@dataclass
class RAResult:
    """Labels and statistics of a kernel run."""

    status: np.ndarray
    depth: np.ndarray  # int32 round of finalization, -1 for draws
    rounds: int
    finalized: int
    parent_notifications: int  # == update messages in the distributed run
    round_sizes: list = field(default_factory=list)


def threshold_init(graph: DatabaseGraph, t: int) -> RAProblem:
    """Initial labels for threshold ``t`` of a capture database.

    WIN: an exit already achieves ``>= t``.  LOSS: no internal move and
    every exit is ``<= -t`` (positions without moves carry the terminal
    value as their exit).  Positions whose counter may reach zero later
    become LOSS only if their best exit is also ``<= -t``.
    """
    if t < 1:
        raise ValueError(f"threshold must be >= 1, got {t}")
    status = np.zeros(graph.size, dtype=np.uint8)
    be = graph.best_exit.astype(np.int32)
    win0 = be >= t
    loss_eligible = be <= -t  # includes NO_EXIT (very negative): no escape
    loss0 = loss_eligible & (graph.out_degree == 0) & ~win0
    status[win0] = WIN
    status[loss0] = LOSS
    return RAProblem(
        size=graph.size,
        status=status,
        counts=graph.out_degree.astype(np.int32).copy(),
        predecessors=csr_provider(graph.reverse),
        loss_eligible=loss_eligible,
    )


def csr_provider(reverse: CSR) -> PredecessorProvider:
    """Predecessors from a precomputed transposed adjacency."""

    def provider(idx: np.ndarray):
        return reverse.neighbors_of(idx)

    return provider


def unmove_provider(game, db_id) -> PredecessorProvider:
    """Predecessors via on-the-fly unmove generation (paper-faithful)."""

    def provider(idx: np.ndarray):
        return game.predecessors_internal(db_id, idx)

    return provider


def solve_kernel(problem: RAProblem, record_rounds: bool = False) -> RAResult:
    """Run retrograde propagation to its least fixpoint.

    Rounds alternate gather/scatter over the frontier; every update is
    purely array-wise.  Positions still UNKNOWN at the end are the draws
    of this run (they sit on cycles neither player can profitably leave).
    """
    status = problem.status
    counts = problem.counts
    depth = np.full(problem.size, -1, dtype=np.int32)
    frontier = np.flatnonzero(status != UNKNOWN)
    depth[frontier] = 0
    finalized = int(frontier.shape[0])
    notifications = 0
    rounds = 0
    round_sizes = [finalized] if record_rounds else []

    while frontier.size:
        rounds += 1
        child_row, parents = problem.predecessors(frontier)
        notifications += int(parents.shape[0])
        if parents.size == 0:
            break
        child_status = status[frontier[child_row]]

        # Moves into LOSS children let the parent win.
        loss_children = child_status == LOSS
        win_parents = parents[loss_children]
        new_win = np.unique(win_parents[status[win_parents] == UNKNOWN])
        status[new_win] = WIN

        # Moves into WIN children burn one escape option of the parent.
        win_children = child_status == WIN
        dec_parents = parents[win_children]
        np.subtract.at(counts, dec_parents, 1)
        zeroed = np.unique(dec_parents)
        new_loss = zeroed[
            (counts[zeroed] == 0)
            & (status[zeroed] == UNKNOWN)
            & problem.loss_eligible[zeroed]
        ]
        status[new_loss] = LOSS

        frontier = np.concatenate([new_win, new_loss])
        depth[frontier] = rounds
        finalized += int(frontier.shape[0])
        if record_rounds:
            round_sizes.append(int(frontier.shape[0]))

    return RAResult(
        status=status,
        depth=depth,
        rounds=rounds,
        finalized=finalized,
        parent_notifications=notifications,
        round_sizes=round_sizes,
    )
