"""Shared-memory fan-out substrate for multiprocess solving.

The paper's headline speedup hinges on driving the *per-position*
communication cost toward zero (message combining packs thousands of
updates into one Ethernet frame).  The modern-hardware analogue of that
overhead class is the pickle tax of a process pool: every worker result
is serialized in the child, shipped over a pipe, and deserialized in
the parent, so fanning a database scan or a set of threshold runs
across cores moves megabytes per task even though the parent only
needs a few integers of metadata.

:class:`ShmArena` removes that tax.  The parent allocates named numpy
arrays backed by ``multiprocessing.shared_memory`` segments; workers
forked from the parent inherit the arena through a module global and
write their results directly into their own *disjoint* slice of each
array.  Pool results shrink to small metadata tuples (ids, counts, wall
times), and a task replayed after a worker crash simply re-writes its
own region — byte-identical, because the region is owned by exactly one
task (see :mod:`repro.resilience`).

The parent stays the owner of every segment: :meth:`ShmArena.close`
unlinks them all.  ``mmap`` refuses to unmap a segment while numpy
views of it are alive, so the parent copies results out with
:meth:`ShmArena.take` (a local memcpy — cheap compared to a pickle
round-trip) before closing.

Platforms without POSIX shared memory fall back to the pickling path;
gate on :func:`shm_available` (the CLI exposes this as ``--no-shm``).
"""

from __future__ import annotations

import numpy as np

try:  # Python >= 3.8 on POSIX/Windows; guarded for exotic platforms.
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - no shm on this platform
    _shared_memory = None

__all__ = ["shm_available", "ShmArena"]


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` is usable here."""
    return _shared_memory is not None


class ShmArena:
    """A set of named shared-memory numpy arrays owned by the parent.

    Allocate arrays with :meth:`alloc` *before* the worker pool forks,
    publish the arena to workers through a module global, and close it
    (context manager or :meth:`close`) once results are copied out.
    Workers index the arena (``arena["status"]``) and write into their
    task's slice; they never allocate, close, or unlink.
    """

    def __init__(self):
        if _shared_memory is None:  # pragma: no cover - platform gate
            raise RuntimeError("shared memory is unavailable on this platform")
        self._segments: dict[str, object] = {}
        self._arrays: dict[str, np.ndarray] = {}
        #: Total bytes allocated across all segments.
        self.nbytes = 0

    # ------------------------------------------------------------ lifecycle

    def alloc(self, name: str, shape, dtype) -> np.ndarray:
        """Create one zero-filled shared array under ``name``."""
        if name in self._segments:
            raise ValueError(f"arena already holds an array named {name!r}")
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        segment = _shared_memory.SharedMemory(
            create=True, size=max(nbytes, 1)
        )
        array = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        array[...] = 0
        self._segments[name] = segment
        self._arrays[name] = array
        self.nbytes += nbytes
        return array

    def close(self) -> None:
        """Drop all views and unlink every segment (idempotent)."""
        self._arrays.clear()
        segments, self._segments = self._segments, {}
        for segment in segments.values():
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- access

    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name]

    @property
    def segments(self) -> int:
        """Number of live shared-memory segments."""
        return len(self._segments)

    def take(self, name: str) -> np.ndarray:
        """Copy an array out of its segment (safe to keep after close)."""
        return np.array(self._arrays[name], copy=True)
