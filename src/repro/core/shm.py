"""Shared-memory fan-out substrate for multiprocess solving.

The paper's headline speedup hinges on driving the *per-position*
communication cost toward zero (message combining packs thousands of
updates into one Ethernet frame).  The modern-hardware analogue of that
overhead class is the pickle tax of a process pool: every worker result
is serialized in the child, shipped over a pipe, and deserialized in
the parent, so fanning a database scan or a set of threshold runs
across cores moves megabytes per task even though the parent only
needs a few integers of metadata.

:class:`ShmArena` removes that tax.  The parent allocates named numpy
arrays backed by ``multiprocessing.shared_memory`` segments; workers
forked from the parent inherit the arena through a module global and
write their results directly into their own *disjoint* slice of each
array.  Pool results shrink to small metadata tuples (ids, counts, wall
times), and a task replayed after a worker crash simply re-writes its
own region — byte-identical, because the region is owned by exactly one
task (see :mod:`repro.resilience`).

The parent stays the owner of every segment: :meth:`ShmArena.close`
unlinks them all.  ``mmap`` refuses to unmap a segment while numpy
views of it are alive, so the parent copies results out with
:meth:`ShmArena.take` (a local memcpy — cheap compared to a pickle
round-trip) before closing.

Platforms without POSIX shared memory fall back to the pickling path;
gate on :func:`shm_available` (the CLI exposes this as ``--no-shm``).
"""

from __future__ import annotations

import os

import numpy as np

try:  # Python >= 3.8 on POSIX/Windows; guarded for exotic platforms.
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - no shm on this platform
    _shared_memory = None

__all__ = ["shm_available", "shm_debug_requested", "ShmArena", "ShmRaceError"]


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` is usable here."""
    return _shared_memory is not None


def shm_debug_requested() -> bool:
    """True when ``REPRO_SHM_DEBUG`` asks for the claims ledger."""
    return os.environ.get("REPRO_SHM_DEBUG", "").lower() in (
        "1", "true", "yes", "on"
    )


class ShmRaceError(RuntimeError):
    """Two tasks claimed overlapping arena regions (or one claimed out
    of bounds) — the disjointness invariant the zero-copy fan-out rests
    on is broken."""


class ShmArena:
    """A set of named shared-memory numpy arrays owned by the parent.

    Allocate arrays with :meth:`alloc` *before* the worker pool forks,
    publish the arena to workers through a module global, and close it
    (context manager or :meth:`close`) once results are copied out.
    Workers index the arena (``arena["status"]``) and write into their
    task's slice; they never allocate, close, or unlink.
    """

    def __init__(self, debug: bool = False):
        if _shared_memory is None:  # pragma: no cover - platform gate
            raise RuntimeError("shared memory is unavailable on this platform")
        self._segments: dict[str, object] = {}
        self._arrays: dict[str, np.ndarray] = {}
        #: Total bytes allocated across all segments.
        self.nbytes = 0
        #: Race-detector mode: :meth:`claim` records each task's region
        #: in a shared ledger that :meth:`check_claims` validates.
        self.debug = bool(debug)
        self._claims_segment = None
        self._claims: np.ndarray | None = None
        self._claim_slots = 0
        self._claim_index: dict[str, int] = {}

    # ------------------------------------------------------------ lifecycle

    def alloc(self, name: str, shape, dtype) -> np.ndarray:
        """Create one zero-filled shared array under ``name``."""
        if name in self._segments:
            raise ValueError(f"arena already holds an array named {name!r}")
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        segment = _shared_memory.SharedMemory(
            create=True, size=max(nbytes, 1)
        )
        array = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        array[...] = 0
        self._segments[name] = segment
        self._arrays[name] = array
        self.nbytes += nbytes
        return array

    def close(self) -> None:
        """Drop all views and unlink every segment (idempotent)."""
        self._arrays.clear()
        self._claims = None
        segments = list(self._segments.values())
        self._segments = {}
        if self._claims_segment is not None:
            segments.append(self._claims_segment)
            self._claims_segment = None
        for segment in segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- access

    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name]

    @property
    def segments(self) -> int:
        """Number of live shared-memory segments."""
        return len(self._segments)

    def take(self, name: str) -> np.ndarray:
        """Copy an array out of its segment (safe to keep after close)."""
        return np.array(self._arrays[name], copy=True)

    # ----------------------------------------------- debug claims ledger
    #
    # The zero-copy fan-out is only correct because every task writes a
    # *disjoint* region of each array.  In debug mode the ledger makes
    # that checkable at runtime: each worker records the flat
    # ``[start, stop)`` range it is about to write, into a ledger row
    # determined by its (task slot, array) pair — so a task replayed
    # after a SIGKILL overwrites its own earlier claim instead of
    # raising a false positive — and the parent validates all claims
    # for overlap before consuming the results.

    _LEDGER_FIELDS = 3  # start, stop, owner (used-flag: stop >= start >= 0)

    def enable_claims(self, n_slots: int) -> None:
        """Allocate the ledger for ``n_slots`` tasks (call after every
        :meth:`alloc`, before the pool forks).  No-op unless ``debug``."""
        if not self.debug:
            return
        if self._claims_segment is not None:
            raise ValueError("claims ledger already enabled")
        self._claim_slots = int(n_slots)
        self._claim_index = {n: i for i, n in enumerate(self._arrays)}
        rows = max(self._claim_slots * len(self._claim_index), 1)
        nbytes = rows * self._LEDGER_FIELDS * 8
        # Deliberately not in self._segments/self.nbytes: the ledger is
        # instrumentation, and must not shift the shm_segments counter
        # or the byte accounting that debug and production runs share.
        self._claims_segment = _shared_memory.SharedMemory(
            create=True, size=nbytes
        )
        ledger = np.ndarray((rows, self._LEDGER_FIELDS), dtype=np.int64,
                            buffer=self._claims_segment.buf)
        ledger[...] = -1  # start == -1 marks an unused row
        self._claims = ledger

    def claim(self, name: str, start: int, stop: int, slot: int,
              owner: int = 0) -> None:
        """Record (from a worker) that task ``slot`` is about to write
        ``array[start:stop]`` (flat indices).  Free when debug is off;
        raises :class:`ShmRaceError` immediately on an out-of-bounds or
        out-of-slot claim."""
        if self._claims is None:
            return
        size = self._arrays[name].size
        if not 0 <= start <= stop <= size:
            raise ShmRaceError(
                f"task {slot} (owner {owner}) claims {name!r}[{start}:"
                f"{stop}] outside the array's {size} elements"
            )
        if not 0 <= slot < self._claim_slots:
            raise ShmRaceError(
                f"claim on {name!r} names task slot {slot}, but the "
                f"ledger holds {self._claim_slots} slots"
            )
        row = slot * len(self._claim_index) + self._claim_index[name]
        self._claims[row] = (start, stop, owner)

    def check_claims(self) -> int:
        """Validate (in the parent) that all recorded claims are
        pairwise disjoint per array; returns the number of claims
        checked.  Raises :class:`ShmRaceError` on the first overlap."""
        if self._claims is None:
            return 0
        n_arrays = len(self._claim_index)
        names = {i: n for n, i in self._claim_index.items()}
        checked = 0
        for arr_idx in range(n_arrays):
            rows = self._claims[arr_idx::n_arrays]
            used = [
                (int(s), int(e), int(o), slot)
                for slot, (s, e, o) in enumerate(rows)
                if s >= 0 and e > s  # empty claims cannot overlap
            ]
            checked += sum(1 for row in rows if row[0] >= 0)
            used.sort()
            for (s1, e1, o1, t1), (s2, e2, o2, t2) in zip(used, used[1:]):
                if e1 > s2:
                    name = names[arr_idx]
                    raise ShmRaceError(
                        f"overlapping claims on {name!r}: task {t1} "
                        f"(owner {o1}) wrote [{s1}:{e1}) and task {t2} "
                        f"(owner {o2}) wrote [{s2}:{e2})"
                    )
        return checked
