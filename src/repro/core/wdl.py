"""Classic win/draw/loss retrograde analysis for converging games.

This is the textbook form of RA (chess endgames, nine men's morris,
connect-four back ends ...): a single position space, terminal positions
labelled win or loss for the mover, and the least-fixpoint propagation of
:mod:`repro.core.kernel`.  Distance-to-outcome in plies falls out of the
level-synchronous rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..games.base import WDLGame
from .graph import CSR, WorkCounters
from .kernel import RAProblem, RAResult, csr_provider, solve_kernel
from .values import LOSS, UNKNOWN, WIN

__all__ = ["WDLGraph", "build_wdl_graph", "solve_wdl", "WDLSolution"]


@dataclass
class WDLGraph:
    """Scanned structure of a win/draw/loss game."""

    size: int
    terminal: np.ndarray
    terminal_win: np.ndarray
    terminal_draw: np.ndarray
    out_degree: np.ndarray
    forward: CSR
    reverse: CSR
    work: WorkCounters


@dataclass
class WDLSolution:
    """Labels plus distance (plies to the forced outcome; -1 for draws)."""

    status: np.ndarray
    depth: np.ndarray
    result: RAResult

    @property
    def wins(self) -> int:
        return int((self.status == WIN).sum())

    @property
    def losses(self) -> int:
        return int((self.status == LOSS).sum())

    @property
    def draws(self) -> int:
        return int((self.status == UNKNOWN).sum())


def build_wdl_graph(game: WDLGame, chunk: int = 1 << 15) -> WDLGraph:
    """Chunked scan of a :class:`WDLGame` into CSR adjacency."""
    size = game.size
    terminal = np.zeros(size, dtype=bool)
    terminal_win = np.zeros(size, dtype=bool)
    terminal_draw = np.zeros(size, dtype=bool)
    out_degree = np.zeros(size, dtype=np.int32)
    srcs, dsts = [], []
    work = WorkCounters()
    for start in range(0, size, chunk):
        stop = min(start + chunk, size)
        scan = game.scan_chunk(start, stop)
        rows = np.arange(start, stop, dtype=np.int64)
        work.positions_scanned += scan.size
        work.moves_generated += int(scan.legal.sum())
        terminal[rows] = scan.terminal
        terminal_win[rows] = scan.terminal & scan.terminal_win
        if scan.terminal_draw is not None:
            terminal_draw[rows] = scan.terminal & scan.terminal_draw
        r, c = np.nonzero(scan.legal)
        if r.size:
            srcs.append(rows[r])
            dsts.append(scan.succ_index[r, c])
            np.add.at(out_degree, rows[r], 1)
    src = np.concatenate(srcs) if srcs else np.zeros(0, dtype=np.int64)
    dst = np.concatenate(dsts) if dsts else np.zeros(0, dtype=np.int64)
    forward = CSR.from_edges(size, src, dst)
    reverse = CSR.from_edges(size, dst, src)
    work.edges_internal = forward.n_edges
    return WDLGraph(
        size=size,
        terminal=terminal,
        terminal_win=terminal_win,
        terminal_draw=terminal_draw,
        out_degree=out_degree,
        forward=forward,
        reverse=reverse,
        work=work,
    )


def wdl_problem(graph: WDLGraph) -> RAProblem:
    """Initial labels: terminals are WIN, LOSS or (stalemate-style) drawn;
    everyone else may lose once all their moves are exhausted."""
    status = np.zeros(graph.size, dtype=np.uint8)
    decided = graph.terminal & ~graph.terminal_draw
    status[decided & graph.terminal_win] = WIN
    status[decided & ~graph.terminal_win] = LOSS
    return RAProblem(
        size=graph.size,
        status=status,
        counts=graph.out_degree.astype(np.int32).copy(),
        predecessors=csr_provider(graph.reverse),
        loss_eligible=np.ones(graph.size, dtype=bool),
    )


def solve_wdl(game: WDLGame, chunk: int = 1 << 15) -> WDLSolution:
    """Solve a win/draw/loss game by retrograde analysis."""
    graph = build_wdl_graph(game, chunk=chunk)
    result = solve_kernel(wdl_problem(graph), record_rounds=True)
    return WDLSolution(status=result.status, depth=result.depth, result=result)
