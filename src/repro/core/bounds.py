"""Bounds-iteration solver — the Allis/van der Meulen/van den Herik
(1991) style algorithm, as an independent alternative to the threshold
decomposition.

Each position carries an interval ``[lo, hi]`` bracketing its value.
Jacobi sweeps tighten both ends through the Bellman operator:

* ``hi(p) <- max(best_exit(p), max over internal successors q of -lo(q))``
* ``lo(p) <- max(best_exit(p), max over internal successors q of -hi(q))``

``lo`` converges to the *finite-forcing* value (what the mover can
guarantee by reaching an exit), ``hi`` to the optimistic bound.  Under
the cycle-equals-zero convention the game value is the median of
``(lo, 0, hi)``: a positive value must be forced finitely (so it equals
``lo``), a negative one is suffered finitely (so it equals ``hi``), and
anything that brackets zero is a draw.

The equivalence with the threshold solver is itself a theorem about
these games; the test suite checks it on every database it solves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..games.base import CaptureGame
from .graph import DatabaseGraph, build_database_graph
from .values import NO_EXIT

__all__ = ["BoundsResult", "solve_bounds", "BoundsSolver"]

_NEG_INF = np.int32(-(10**6))


@dataclass
class BoundsResult:
    """Fixpoint bounds, the assembled values and the sweep count."""

    values: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    sweeps: int


def solve_bounds(graph: DatabaseGraph, bound: int, max_sweeps: int | None = None) -> BoundsResult:
    """Run bounds iteration on one database graph to its fixpoint."""
    size = graph.size
    be = graph.best_exit.astype(np.int32)
    be_eff = np.where(be == np.int32(NO_EXIT), _NEG_INF, be)
    lo = np.full(size, -bound, dtype=np.int32)
    hi = np.full(size, bound, dtype=np.int32)
    leaf = graph.out_degree == 0
    lo[leaf] = be_eff[leaf]
    hi[leaf] = be_eff[leaf]

    fwd = graph.forward
    src = np.repeat(
        np.arange(size, dtype=np.int64), np.diff(fwd.indptr)
    )
    dst = fwd.indices
    limit = max_sweeps if max_sweeps is not None else 4 * (2 * bound + 1) * size + 8
    sweeps = 0
    while sweeps < limit:
        sweeps += 1
        new_hi = be_eff.copy()
        new_lo = be_eff.copy()
        if dst.size:
            np.maximum.at(new_hi, src, -lo[dst])
            np.maximum.at(new_lo, src, -hi[dst])
        # Bounds only tighten (monotone operator from the initial box).
        new_hi = np.minimum(new_hi, hi)
        new_lo = np.maximum(new_lo, lo)
        if (new_hi == hi).all() and (new_lo == lo).all():
            break
        hi, lo = new_hi, new_lo
    else:  # pragma: no cover - safety net
        raise RuntimeError("bounds iteration failed to converge")

    values = np.minimum(np.maximum(lo, 0), hi).astype(np.int16)
    return BoundsResult(values=values, lo=lo, hi=hi, sweeps=sweeps)


class BoundsSolver:
    """Drop-in sequential solver built on bounds iteration.

    Same interface shape as
    :class:`~repro.core.sequential.SequentialSolver.solve`: solves every
    database of a capture game in dependency order.
    """

    def __init__(self, game: CaptureGame, chunk: int = 1 << 15):
        self.game = game
        self.chunk = chunk

    def solve(self, target) -> tuple[dict, dict]:
        values: dict = {}
        sweeps: dict = {}
        for db_id in self.game.db_sequence(target):
            graph = build_database_graph(
                self.game, db_id, values, chunk=self.chunk
            )
            bound = self.game.value_bound(db_id)
            if bound == 0:
                vals = graph.best_exit.astype(np.int16)
                vals[vals == np.int16(NO_EXIT)] = 0
                values[db_id] = vals
                sweeps[db_id] = 0
                continue
            result = solve_bounds(graph, bound)
            values[db_id] = result.values
            sweeps[db_id] = result.sweeps
        return values, sweeps
