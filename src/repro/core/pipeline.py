"""Checkpointed multi-database pipeline.

The paper's computations ran for tens of hours; a production database
builder must survive interruption.  :class:`PipelineRunner` walks a
capture game's database sequence with any solver backend, writing each
finished database (plus a manifest) to a checkpoint directory and
resuming from whatever is already there.

Checkpoints are crash-safe: every array and the manifest land via
atomic tmp-file + rename writes, each database record carries the CRC32
of its ``.npy`` file, and resumes verify it — a checkpoint damaged on
disk is detected and rebuilt instead of half-trusted.  For long
``multiproc`` builds, per-threshold round snapshots
(:class:`~repro.resilience.RoundStore`) let a solve killed mid-database
resume mid-database with bit-identical values.

Backends: ``sequential`` (threshold RA), ``bounds`` (interval
iteration), ``parallel`` (the simulated cluster), ``multiproc``
(supervised process pool on real cores).  All produce identical
databases; the manifest records which backend built what, so mixed
resumes are fine.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..games.base import CaptureGame
from ..obs import MetricsRegistry, NULL_METRICS, names
from ..resilience import (
    CheckpointCorruptError,
    RetryPolicy,
    RoundStore,
    atomic_save_array,
    atomic_write_json,
    load_array_verified,
)
from ..resilience.faults import corrupt_file
from .bounds import BoundsSolver
from .parallel.driver import ParallelConfig, ParallelSolver
from .sequential import SequentialSolver

__all__ = ["PipelineConfig", "PipelineRunner", "PipelineStatus"]

_MANIFEST = "manifest.json"

_BACKENDS = ("sequential", "bounds", "parallel", "multiproc")


@dataclass(frozen=True)
class PipelineConfig:
    """How to build and where to checkpoint."""

    backend: str = "sequential"  # one of _BACKENDS
    checkpoint_dir: str | None = None
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    verify_on_load: bool = True
    #: Process count for the ``multiproc`` backend (None = cpu_count).
    workers: int | None = None
    #: Scan fan-out granularity for the ``multiproc`` backend.
    scan_chunk: int = 1 << 15
    #: Zero-copy shared-memory fan-out for ``multiproc`` workers
    #: (``None`` = wherever the platform supports it, ``False`` = the
    #: ``--no-shm`` pickling path).
    use_shm: bool | None = None
    #: Arena race detector for ``multiproc`` shm fan-outs (``None`` =
    #: follow the ``REPRO_SHM_DEBUG`` environment variable).
    shm_debug: bool | None = None
    #: Retry/rebuild bounds for supervised pools (``multiproc``).
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Checkpoint individual threshold runs of ``multiproc`` builds for
    #: databases at least this large (mid-database crash resume).
    round_snapshots: bool = True
    round_snapshot_min_positions: int = 1 << 15
    #: Optional :class:`~repro.resilience.FaultPlan` (chaos testing).
    faults: object = None

    def __post_init__(self):
        if self.backend not in _BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}")


@dataclass
class PipelineStatus:
    """What one :meth:`PipelineRunner.run` call did."""

    solved: list = field(default_factory=list)
    resumed: list = field(default_factory=list)
    wall_seconds: float = 0.0


class PipelineRunner:
    """Build every database up to a target, checkpointing as it goes."""

    def __init__(
        self,
        game: CaptureGame,
        config: PipelineConfig | None = None,
        metrics=None,
    ):
        self.game = game
        self.config = config or PipelineConfig()
        #: Run-level registry; every database build's metrics are folded
        #: in, whatever backend produced them.
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._dir = (
            Path(self.config.checkpoint_dir)
            if self.config.checkpoint_dir
            else None
        )
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)

    # ----------------------------------------------------------- manifest

    def _manifest_path(self) -> Path:
        return self._dir / _MANIFEST

    def _load_manifest(self) -> dict:
        if self._dir is None or not self._manifest_path().exists():
            return {"game": self.game.name, "databases": {}}
        manifest = json.loads(self._manifest_path().read_text())
        if manifest.get("game") != self.game.name:
            raise ValueError(
                f"checkpoint dir holds {manifest.get('game')!r}, "
                f"not {self.game.name!r}"
            )
        return manifest

    def _save_manifest(self, manifest: dict) -> None:
        if self._dir is not None:
            atomic_write_json(self._manifest_path(), manifest)

    def _db_path(self, db_id) -> Path:
        return self._dir / f"db_{db_id}.npy"

    def _round_store(self, db_id) -> RoundStore | None:
        """Per-threshold snapshot store for one database build, when the
        configuration asks for intra-database checkpoints."""
        if (
            self._dir is None
            or self.config.backend != "multiproc"
            or not self.config.round_snapshots
        ):
            return None
        size = self.game.db_size(db_id)
        if size < self.config.round_snapshot_min_positions:
            return None
        return RoundStore(self._dir / f"rounds_db_{db_id}", size)

    # ---------------------------------------------------------------- run

    def run(self, target) -> tuple[dict, PipelineStatus]:
        """Solve (or resume) the pipeline; returns (values, status)."""
        t0 = time.perf_counter()
        status = PipelineStatus()
        manifest = self._load_manifest()
        values: dict = {}
        for db_id in self.game.db_sequence(target):
            loaded = self._try_load(db_id, manifest)
            if loaded is not None:
                values[db_id] = loaded
                status.resumed.append(db_id)
                self.metrics.inc(names.PIPELINE_DATABASES_RESUMED)
                continue
            t_db = time.perf_counter()
            round_store = self._round_store(db_id)
            values[db_id], build_metrics = self._solve_one(
                db_id, values, round_store
            )
            status.solved.append(db_id)
            self.metrics.inc(names.PIPELINE_DATABASES_SOLVED)
            record = {
                "backend": self.config.backend,
                "positions": int(values[db_id].shape[0]),
                "wall_seconds": time.perf_counter() - t_db,
                "metrics": build_metrics,
            }
            self.metrics.merge(build_metrics)
            self._checkpoint(db_id, values[db_id], manifest, record)
            if round_store is not None:
                # The final values are safely on disk; the per-threshold
                # snapshots are redundant from here on.
                round_store.clear()
        status.wall_seconds = time.perf_counter() - t0
        return values, status

    def _try_load(self, db_id, manifest):
        if self._dir is None:
            return None
        key = str(db_id)
        record = manifest["databases"].get(key)
        if record is None:
            return None
        path = self._db_path(db_id)
        if not path.exists():
            return None
        crc = record.get("crc32") if isinstance(record, dict) else None
        if crc is not None:
            try:
                array = load_array_verified(path, crc)
            except CheckpointCorruptError:
                # Damaged on disk after a clean write: drop the record
                # and rebuild rather than trusting (or dying on) it.
                self.metrics.inc(names.RESILIENCE_CHECKPOINTS_REJECTED)
                del manifest["databases"][key]
                self._save_manifest(manifest)
                return None
        else:
            array = np.load(path)
        expected = self.game.db_size(db_id)
        if array.shape[0] != expected:
            raise ValueError(
                f"checkpoint for db {db_id} has {array.shape[0]} entries, "
                f"expected {expected}"
            )
        if self.config.verify_on_load:
            bound = self.game.value_bound(db_id)
            if array.size and np.abs(array).max() > bound:
                raise ValueError(f"checkpoint for db {db_id} is corrupt")
        return array

    def _solve_one(self, db_id, values, round_store=None):
        """Build one database; returns ``(values, metrics snapshot)``.

        Each build gets a fresh registry so its snapshot is exactly this
        database's work; the runner folds it into the run-level registry
        and the checkpoint manifest keeps it as the build record.
        """
        backend = self.config.backend
        build = MetricsRegistry()
        if backend == "sequential":
            solver = SequentialSolver(self.game, metrics=build)
            out, _ = solver.solve_database(db_id, values)
            return out, build.snapshot()
        if backend == "multiproc":
            from .multiproc import MultiprocessSolver

            solver = MultiprocessSolver(
                self.game,
                workers=self.config.workers,
                metrics=build,
                policy=self.config.retry,
                faults=self.config.faults,
                chunk=self.config.scan_chunk,
                use_shm=self.config.use_shm,
                shm_debug=self.config.shm_debug,
            )
            out = solver.solve_database(db_id, values, round_store=round_store)
            return out, build.snapshot()
        if backend == "bounds":
            # BoundsSolver exposes whole-pipeline solve only; reuse its
            # internals for one database.
            from .graph import build_database_graph
            from .bounds import solve_bounds
            from .values import NO_EXIT

            with build.phase(names.BOUNDS_SOLVE_DATABASE):
                graph = build_database_graph(self.game, db_id, values)
                bound = self.game.value_bound(db_id)
                build.inc(names.BOUNDS_DATABASES)
                build.inc(names.BOUNDS_POSITIONS_SCANNED, graph.size)
                if bound == 0:
                    vals = graph.best_exit.astype(np.int16)
                    vals[vals == np.int16(NO_EXIT)] = 0
                    return vals, build.snapshot()
                result = solve_bounds(graph, bound)
                build.inc(names.BOUNDS_SWEEPS, result.sweeps)
            return result.values, build.snapshot()
        solver = ParallelSolver(self.game, self.config.parallel, metrics=build)
        out, _ = solver.solve_database(db_id, values)
        return out, build.snapshot()

    def _checkpoint(self, db_id, array, manifest, record: dict) -> None:
        if self._dir is None:
            return
        path = self._db_path(db_id)
        record["crc32"] = atomic_save_array(path, array)
        manifest["databases"][str(db_id)] = record
        self._save_manifest(manifest)
        faults = self.config.faults
        if (
            faults is not None
            and getattr(faults, "checkpoint_corrupt", None) is not None
            and faults.checkpoint_corrupt.should_fire(db_id)
        ):
            # Chaos hook: damage the freshly written checkpoint so the
            # next resume exercises CRC detection and rebuild.
            corrupt_file(path)
            self.metrics.inc(names.FAULTS_CHECKPOINTS_CORRUPTED)
