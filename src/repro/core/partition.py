"""Position-space partitioning: which processor owns which position.

The parallel algorithm is owner-computes: a processor stores the state of
its owned positions and is the only one allowed to update them, so every
cross-owner parent notification becomes a message.  The partition choice
controls both load balance and the remote fraction of edges; the paper's
scheme is a simple position-to-processor function, reproduced here as
``cyclic`` (default) with ``block`` and ``hash`` for the ablation in
Table 6.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "Partition",
    "BlockPartition",
    "CyclicPartition",
    "HashPartition",
    "make_partition",
    "partition_from_spec",
    "balance_report",
]


class Partition(abc.ABC):
    """Bijection between global indices and (owner, local slot) pairs."""

    name: str = "partition"

    def __init__(self, size: int, n_parts: int):
        if size < 0 or n_parts < 1:
            raise ValueError("bad partition parameters")
        self.size = int(size)
        self.n_parts = int(n_parts)

    @abc.abstractmethod
    def owner_of(self, idx: np.ndarray) -> np.ndarray:
        """Owning rank of each global index."""

    @abc.abstractmethod
    def to_local(self, idx: np.ndarray) -> np.ndarray:
        """Local slot of each global index on its owner."""

    @abc.abstractmethod
    def local_indices(self, rank: int) -> np.ndarray:
        """Global indices owned by ``rank``, in local-slot order."""

    def local_count(self, rank: int) -> int:
        return int(self.local_indices(rank).shape[0])

    def spec(self) -> dict:
        """JSON-serializable description of this partition.

        Every partition is deterministic in ``(kind, size, n_parts)``,
        so these three fields are the whole state; the cluster shard
        manifest (:mod:`repro.cluster.manifest`) stores one spec per
        database and :func:`partition_from_spec` rebuilds the identical
        bijection on the router side.
        """
        return {"kind": self.name, "size": self.size, "n_parts": self.n_parts}


class BlockPartition(Partition):
    """Contiguous, nearly equal blocks."""

    name = "block"

    def __init__(self, size: int, n_parts: int):
        super().__init__(size, n_parts)
        # First (size % P) blocks get one extra element.
        base, extra = divmod(self.size, self.n_parts)
        counts = np.full(self.n_parts, base, dtype=np.int64)
        counts[:extra] += 1
        self._starts = np.zeros(self.n_parts + 1, dtype=np.int64)
        np.cumsum(counts, out=self._starts[1:])

    def owner_of(self, idx):
        idx = np.asarray(idx, dtype=np.int64)
        return np.searchsorted(self._starts, idx, side="right") - 1

    def to_local(self, idx):
        idx = np.asarray(idx, dtype=np.int64)
        return idx - self._starts[self.owner_of(idx)]

    def local_indices(self, rank):
        return np.arange(self._starts[rank], self._starts[rank + 1], dtype=np.int64)


class CyclicPartition(Partition):
    """Round-robin: ``owner = idx mod P`` — the classic RA choice, since
    neighbouring positions (which finalize together) spread evenly."""

    name = "cyclic"

    def owner_of(self, idx):
        return np.asarray(idx, dtype=np.int64) % self.n_parts

    def to_local(self, idx):
        return np.asarray(idx, dtype=np.int64) // self.n_parts

    def local_indices(self, rank):
        return np.arange(rank, self.size, self.n_parts, dtype=np.int64)


class HashPartition(Partition):
    """Multiplicative hash (splitmix64 finalizer) then mod P."""

    name = "hash"

    _M1 = np.uint64(0xBF58476D1CE4E5B9)
    _M2 = np.uint64(0x94D049BB133111EB)

    def __init__(self, size: int, n_parts: int):
        super().__init__(size, n_parts)
        owners = self._hash_owner(np.arange(self.size, dtype=np.int64))
        order = np.argsort(owners, kind="stable")
        self._locals = [order[owners[order] == r] for r in range(self.n_parts)]
        # Local slot of each global index.
        self._slot = np.empty(self.size, dtype=np.int64)
        for r, li in enumerate(self._locals):
            self._slot[li] = np.arange(li.shape[0], dtype=np.int64)
        self._owners = owners

    def _hash_owner(self, idx: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore"):
            z = idx.astype(np.uint64)
            z = (z ^ (z >> np.uint64(30))) * self._M1
            z = (z ^ (z >> np.uint64(27))) * self._M2
            z = z ^ (z >> np.uint64(31))
        return (z % np.uint64(self.n_parts)).astype(np.int64)

    def owner_of(self, idx):
        return self._owners[np.asarray(idx, dtype=np.int64)]

    def to_local(self, idx):
        return self._slot[np.asarray(idx, dtype=np.int64)]

    def local_indices(self, rank):
        return self._locals[rank]


_PARTITIONS = {
    "block": BlockPartition,
    "cyclic": CyclicPartition,
    "hash": HashPartition,
}


def make_partition(kind: str, size: int, n_parts: int) -> Partition:
    """Factory keyed by ``"block" | "cyclic" | "hash"``."""
    try:
        cls = _PARTITIONS[kind]
    except KeyError:
        raise ValueError(
            f"unknown partition {kind!r}; choose from {sorted(_PARTITIONS)}"
        ) from None
    return cls(size, n_parts)


def partition_from_spec(spec: dict) -> Partition:
    """Rebuild a :class:`Partition` from :meth:`Partition.spec` output.

    Raises :class:`ValueError` on missing fields or an unknown kind, so
    a corrupted or hand-edited shard manifest fails loudly at load time
    rather than silently misrouting probes.
    """
    try:
        kind = spec["kind"]
        size = int(spec["size"])
        n_parts = int(spec["n_parts"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"bad partition spec {spec!r}: {exc}") from exc
    return make_partition(kind, size, n_parts)


def balance_report(partition: Partition) -> dict:
    """Load-balance metrics: max/mean owned positions across ranks."""
    counts = np.array(
        [partition.local_count(r) for r in range(partition.n_parts)], dtype=np.int64
    )
    mean = counts.mean() if counts.size else 0.0
    return {
        "min": int(counts.min()),
        "max": int(counts.max()),
        "mean": float(mean),
        "imbalance": float(counts.max() / mean) if mean else 1.0,
    }
