"""Sequential capture-difference database construction.

This is the paper's uniprocessor baseline (the "40 hours on one machine"
side of the headline result).  For each database in dependency order it
builds the move graph once and runs one retrograde propagation per
threshold ``t = 1..n``; the threshold labels are then assembled into the
final value array (see DESIGN.md for why this decomposition is exactly
classic win/loss RA run ``n`` times).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..games.base import CaptureGame
from ..obs import NULL_METRICS
from .graph import DatabaseGraph, WorkCounters, build_database_graph
from .kernel import RAProblem, solve_kernel, threshold_init, unmove_provider
from .values import LOSS, WIN, assemble_values, check_nested_thresholds

__all__ = ["DatabaseReport", "SolveReport", "SequentialSolver"]


@dataclass
class DatabaseReport:
    """Everything measured while solving one database."""

    db_id: object
    size: int
    work: WorkCounters
    thresholds: int = 0
    propagation_rounds: int = 0
    parent_notifications: int = 0
    wall_seconds: float = 0.0
    graph_memory_bytes: int = 0

    @property
    def total_ops(self) -> int:
        """Abstract operation count fed to the calibrated cost model."""
        return (
            self.work.positions_scanned
            + self.work.moves_generated
            + self.work.exit_lookups
            + self.parent_notifications
        )


@dataclass
class SolveReport:
    """Per-database reports for a full solve."""

    databases: list = field(default_factory=list)

    def by_id(self) -> Mapping:
        return {r.db_id: r for r in self.databases}

    @property
    def total_ops(self) -> int:
        return sum(r.total_ops for r in self.databases)

    @property
    def wall_seconds(self) -> float:
        return sum(r.wall_seconds for r in self.databases)


class SequentialSolver:
    """Uniprocessor retrograde analysis over a :class:`CaptureGame`.

    Parameters
    ----------
    game:
        The stratified game to solve.
    predecessor_mode:
        ``"csr"`` (default) propagates through a precomputed transposed
        graph; ``"unmove"`` regenerates predecessors on the fly exactly as
        the paper's memory-constrained implementation did.  Both produce
        identical databases (asserted in tests).
    chunk:
        Scan batch size.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` (or a scoped view);
        the solver reports under the ``sequential.`` prefix.  Defaults to
        the zero-cost null registry.
    """

    def __init__(
        self,
        game: CaptureGame,
        predecessor_mode: str = "csr",
        chunk: int = 1 << 15,
        check_invariants: bool = False,
        collect_depth: bool = False,
        metrics=None,
    ):
        if predecessor_mode not in ("csr", "unmove"):
            raise ValueError(f"unknown predecessor_mode {predecessor_mode!r}")
        self.game = game
        self.predecessor_mode = predecessor_mode
        self.chunk = chunk
        self.check_invariants = check_invariants
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: When set, :meth:`solve` also returns per-database distance
        #: arrays: plies of optimal play needed to realize the value
        #: within its database (draws: -1).  A strict progress measure for
        #: optimal-line replay.
        self.collect_depth = collect_depth
        self.depths: dict = {}

    # ------------------------------------------------------------ database

    def solve_database(
        self, db_id, lower_values: Mapping
    ) -> tuple[np.ndarray, DatabaseReport]:
        """Solve one database given all its dependencies."""
        t0 = time.perf_counter()
        graph = build_database_graph(
            self.game, db_id, lower_values, chunk=self.chunk
        )
        report = DatabaseReport(
            db_id=db_id,
            size=graph.size,
            work=graph.work,
            graph_memory_bytes=graph.memory_bytes(),
        )
        bound = self.game.value_bound(db_id)
        if bound == 0:
            # Single-valued database (e.g. the empty awari board).
            values = graph.best_exit.astype(np.int16)
            values[values == np.iinfo(np.int16).min] = 0
            report.wall_seconds = time.perf_counter() - t0
            self._record(report)
            return values, report

        win_sets, loss_sets = [], []
        depths = [] if self.collect_depth else None
        for t in range(1, bound + 1):
            problem = threshold_init(graph, t)
            if self.predecessor_mode == "unmove":
                problem.predecessors = unmove_provider(self.game, db_id)
            result = solve_kernel(problem)
            win_sets.append(result.status == WIN)
            loss_sets.append(result.status == LOSS)
            if depths is not None:
                depths.append(result.depth)
            report.thresholds += 1
            report.propagation_rounds += result.rounds
            report.parent_notifications += result.parent_notifications
        if self.check_invariants:
            check_nested_thresholds(win_sets, loss_sets)
        values = assemble_values(win_sets, loss_sets)
        if depths is not None:
            # A position's distance comes from the threshold run that
            # finalized it at its exact value t = |v|.
            db_depth = np.full(graph.size, -1, dtype=np.int32)
            for t, (w, l, d) in enumerate(zip(win_sets, loss_sets, depths), 1):
                exact = (w | l) & (np.abs(values) == t)
                db_depth[exact] = d[exact]
            self.depths[db_id] = db_depth
        report.wall_seconds = time.perf_counter() - t0
        self._record(report)
        return values, report

    def _record(self, report: DatabaseReport) -> None:
        """Feed one database's measurements into the metrics registry."""
        m = self.metrics
        if not m.enabled:
            return
        m.inc("sequential.databases")
        m.inc("sequential.positions_scanned", report.work.positions_scanned)
        m.inc("sequential.moves_generated", report.work.moves_generated)
        m.inc("sequential.edges_internal", report.work.edges_internal)
        m.inc("sequential.exit_lookups", report.work.exit_lookups)
        m.inc("sequential.thresholds", report.thresholds)
        m.inc("sequential.propagation_rounds", report.propagation_rounds)
        m.inc("sequential.parent_notifications", report.parent_notifications)
        m.observe("sequential.db_positions", report.size)
        m.observe("sequential.graph_memory_bytes", report.graph_memory_bytes)
        m.observe_seconds("sequential.solve_database", report.wall_seconds)

    # ---------------------------------------------------------------- all

    def solve(self, target) -> tuple[dict, SolveReport]:
        """Solve every database up to ``target`` in dependency order."""
        values: dict = {}
        report = SolveReport()
        for db_id in self.game.db_sequence(target):
            vals, db_report = self.solve_database(db_id, values)
            values[db_id] = vals
            report.databases.append(db_report)
        return values, report
