"""Slow, dense, independently-coded solvers used as test oracles.

These implementations share no propagation machinery with the production
kernel: they repeatedly rescan *forward* moves of every position until the
win/loss sets stop growing.  O(size² ) in the worst case — only suitable
for the small games and low stone counts used in tests, which is the
point: an obviously-correct comparator.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..games.base import CaptureGame, WDLGame
from .values import LOSS, UNKNOWN, WIN

__all__ = ["oracle_capture_db", "oracle_capture_solve", "oracle_wdl"]


def _full_scan(game: CaptureGame, db_id):
    size = game.db_size(db_id)
    return game.scan_chunk(db_id, 0, size)


def oracle_capture_db(game: CaptureGame, db_id, lower_values: Mapping) -> np.ndarray:
    """Dense fixpoint solve of one capture database.

    For each threshold ``t`` the sets ``W = {value >= t}`` and
    ``L = {value <= -t}`` are grown by whole-database Bellman passes until
    stable (least fixpoint, so draws never enter either set).
    """
    size = game.db_size(db_id)
    bound = game.value_bound(db_id)
    scan = _full_scan(game, db_id)

    # Precompute per-move exit values (captures and the terminal rule).
    legal = scan.legal
    n_slots = legal.shape[1]
    exit_val = np.full((size, n_slots), np.iinfo(np.int32).min, dtype=np.int32)
    internal = legal & (scan.capture == 0)
    for s in range(n_slots):
        m = legal[:, s] & (scan.capture[:, s] > 0)
        if m.any():
            caps = scan.capture[m, s]
            succ = scan.succ_index[m, s]
            vals = np.empty(caps.shape[0], dtype=np.int32)
            for amount in np.unique(caps):
                sel = caps == amount
                target = game.exit_db(db_id, int(amount))
                vals[sel] = amount - lower_values[target][succ[sel]]
            exit_val[m, s] = vals

    values = np.zeros(size, dtype=np.int16)
    values[scan.terminal] = scan.terminal_value[scan.terminal]

    for t in range(1, bound + 1):
        w = np.zeros(size, dtype=bool)
        l = np.zeros(size, dtype=bool)
        # Terminal positions are decided by their terminal value alone.
        w |= scan.terminal & (scan.terminal_value >= t)
        l |= scan.terminal & (scan.terminal_value <= -t)
        while True:
            new_w = w.copy()
            new_l = ~scan.terminal & ~w
            for s in range(n_slots):
                mv = legal[:, s]
                good_exit = mv & (exit_val[:, s] >= t)
                # Successor indices are only valid (within this database)
                # for internal moves; mask before gathering.
                succ_s = np.where(internal[:, s], scan.succ_index[:, s], 0)
                to_lost = internal[:, s] & l[succ_s]
                new_w |= good_exit | to_lost
                # For LOSS every move must be bad.
                bad_exit = exit_val[:, s] <= -t
                bad_internal = internal[:, s] & w[succ_s]
                move_ok_for_l = ~mv | (mv & ~internal[:, s] & bad_exit) | bad_internal
                new_l &= move_ok_for_l
            new_l |= l
            new_l &= ~new_w
            if (new_w == w).all() and (new_l == l).all():
                break
            w, l = new_w, new_l
        values[w] = t
        values[l] = -t
    return values


def oracle_capture_solve(game: CaptureGame, target) -> dict:
    """Dense solve of every database up to ``target``."""
    values: dict = {}
    for db_id in game.db_sequence(target):
        values[db_id] = oracle_capture_db(game, db_id, values)
    return values


def oracle_wdl(game: WDLGame) -> np.ndarray:
    """Dense fixpoint win/draw/loss labels for a :class:`WDLGame`."""
    size = game.size
    scan = game.scan_chunk(0, size)
    draw_terminal = (
        scan.terminal_draw
        if scan.terminal_draw is not None
        else np.zeros(size, dtype=bool)
    )
    win = scan.terminal & scan.terminal_win & ~draw_terminal
    loss = scan.terminal & ~scan.terminal_win & ~draw_terminal
    n_slots = scan.legal.shape[1]
    while True:
        new_win = win.copy()
        new_loss = ~scan.terminal
        for s in range(n_slots):
            mv = scan.legal[:, s]
            succ = scan.succ_index[:, s]
            new_win |= mv & loss[succ]
            new_loss &= ~mv | win[succ]
        new_loss |= loss
        new_loss &= ~new_win
        if (new_win == win).all() and (new_loss == loss).all():
            break
        win, loss = new_win, new_loss
    status = np.full(size, UNKNOWN, dtype=np.uint8)
    status[win] = WIN
    status[loss] = LOSS
    return status
