"""Safra's distributed termination-detection algorithm.

The propagation phase of the parallel RA is done when (a) every worker's
local frontier is empty and (b) no update packet is in flight.  No single
worker can observe this, so the workers run Safra's token algorithm on a
logical ring:

* every worker keeps a message counter (sent - received app packets) and
  a colour; *receiving* an app packet turns a worker black;
* the coordinator (rank 0), when idle, sends a white token with count 0
  around the ring; each idle worker adds its counter, taints the token if
  it is black, whitens itself, and forwards;
* when the token returns white and ``token count + coordinator counter``
  is zero while the coordinator is still white and idle, the system has
  terminated; otherwise a new round starts.

A worker holding the token while it still has local work simply delays
forwarding until it drains (handled by the worker's step loop).

This module is pure protocol state — no simulation dependencies — so it
is unit-testable in isolation and reusable by any actor.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WHITE", "BLACK", "Token", "SafraState"]

WHITE = 0
BLACK = 1


@dataclass
class Token:
    """The circulating token: cumulative count and colour."""

    count: int = 0
    color: int = WHITE
    round_no: int = 0


class SafraState:
    """Per-worker Safra bookkeeping."""

    def __init__(self, rank: int, size: int):
        self.rank = rank
        self.size = size
        self.counter = 0  # app packets sent - received
        self.color = WHITE
        self.held_token: Token | None = None
        self.rounds_started = 0

    # ------------------------------------------------------------- events

    def on_app_send(self, n: int = 1) -> None:
        self.counter += n

    def on_app_receive(self, n: int = 1) -> None:
        self.counter -= n
        self.color = BLACK

    def reset(self) -> None:
        """Fresh phase: counters and colours start over."""
        self.counter = 0
        self.color = WHITE
        self.held_token = None

    # -------------------------------------------------------------- token

    def next_rank(self) -> int:
        return (self.rank + 1) % self.size

    def start_round(self) -> Token:
        """Coordinator only: emit a fresh white token."""
        if self.rank != 0:
            raise RuntimeError("only rank 0 starts token rounds")
        self.rounds_started += 1
        self.color = WHITE
        return Token(count=0, color=WHITE, round_no=self.rounds_started)

    def hold(self, token: Token) -> None:
        """Park the token until local work drains."""
        if self.held_token is not None:
            raise RuntimeError(f"rank {self.rank} already holds a token")
        self.held_token = token

    def release(self) -> Token | None:
        token, self.held_token = self.held_token, None
        return token

    def forward(self, token: Token) -> Token:
        """Non-coordinator: stamp the token and pass it on."""
        if self.rank == 0:
            raise RuntimeError("coordinator does not forward its own token")
        token.count += self.counter
        if self.color == BLACK:
            token.color = BLACK
        self.color = WHITE
        return token

    def coordinator_check(self, token: Token) -> bool:
        """Coordinator: True iff the returned token proves termination."""
        if self.rank != 0:
            raise RuntimeError("only rank 0 evaluates tokens")
        terminated = (
            token.color == WHITE
            and self.color == WHITE
            and token.count + self.counter == 0
        )
        return terminated
