"""Database verification: certificates that the computed values are right.

Three independent checks, usable on any solved capture database:

* :func:`check_bellman` — the value function must satisfy the Bellman
  optimality equation exactly: ``v(p) = max over moves of
  (capture - v(successor))``, terminals carrying their terminal value.
  Vectorized over the whole database.
* :func:`check_threshold_nesting` is re-exported from
  :mod:`repro.core.values` (forcing ``>= t+1`` implies forcing ``>= t``).
* :func:`replay_certificate` — play both sides greedily (preferring
  capturing moves among the optimal ones) from sampled positions and
  check the realized capture difference equals the stored value.  For
  positions with non-zero value the replay must actually terminate; for
  draws a bounded number of plies with zero captures is accepted.

The test suite runs these on every solver's output; users can run them on
loaded databases via ``python -m repro verify``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..games.base import CaptureGame

__all__ = ["BellmanReport", "check_bellman", "replay_certificate"]


@dataclass
class BellmanReport:
    """Outcome of a whole-database Bellman consistency check."""

    checked: int
    violations: int
    first_violation: int | None

    @property
    def ok(self) -> bool:
        return self.violations == 0


def check_bellman(
    game: CaptureGame,
    db_id,
    values: dict,
    chunk: int = 1 << 15,
) -> BellmanReport:
    """Verify ``values[db_id]`` against the Bellman equation.

    ``values`` must also contain every smaller database a capture reaches.
    """
    v = np.asarray(values[db_id], dtype=np.int64)
    size = game.db_size(db_id)
    if v.shape[0] != size:
        raise ValueError(f"value array has {v.shape[0]} entries, db has {size}")
    violations = 0
    first = None
    for start in range(0, size, chunk):
        stop = min(start + chunk, size)
        scan = game.scan_chunk(db_id, start, stop)
        n = stop - start
        best = np.full(n, -(10**9), dtype=np.int64)
        for s in range(scan.legal.shape[1]):
            mv = scan.legal[:, s]
            if not mv.any():
                continue
            cap = scan.capture[:, s]
            succ = scan.succ_index[:, s]
            move_val = np.full(n, -(10**9), dtype=np.int64)
            internal = mv & (cap == 0)
            move_val[internal] = -v[succ[internal]]
            for amount in np.unique(cap[mv & (cap > 0)]):
                sel = mv & (cap == amount)
                target = game.exit_db(db_id, int(amount))
                move_val[sel] = amount - values[target][succ[sel]]
            best = np.maximum(best, np.where(mv, move_val, -(10**9)))
        expect = np.where(scan.terminal, scan.terminal_value, best)
        bad = np.flatnonzero(expect != v[start:stop])
        if bad.size:
            violations += int(bad.size)
            if first is None:
                first = int(start + bad[0])
    return BellmanReport(checked=size, violations=violations, first_violation=first)


def replay_certificate(
    game,
    dbs,
    n_stones: int,
    samples: int = 50,
    seed: int = 0,
    max_plies: int = 400,
) -> int:
    """Replay optimal lines from random ``n_stones`` positions.

    Returns the number of positions replayed; raises ``AssertionError``
    with a board rendering on the first mismatch.  ``dbs`` is a
    :class:`~repro.db.store.DatabaseSet` (or mapping) containing every
    database up to ``n_stones``.
    """
    from ..db.query import optimal_line

    rng = np.random.default_rng(seed)
    indexer = game.engine.indexer(n_stones)
    idx = rng.integers(0, indexer.count, size=samples)
    boards = indexer.unrank(idx)
    values = dbs[n_stones]
    for k in range(samples):
        stored = int(values[idx[k]])
        realized, line = optimal_line(game, dbs, boards[k], max_plies=max_plies)
        if realized != stored:
            raise AssertionError(
                f"replay mismatch at index {int(idx[k])}: stored {stored}, "
                f"realized {realized} via {line}\n"
                + game.engine.board_to_string(boards[k])
            )
    return samples
