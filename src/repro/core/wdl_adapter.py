"""Run win/draw/loss games on the full distributed machinery.

A :class:`~repro.games.base.WDLGame` is exactly a capture game with a
single database, value bound 1 and no capturing moves: terminal wins and
losses become exits worth ±1 and everything else propagates through
internal edges.  Wrapping one in :class:`WDLAsCapture` lets the
*parallel* solver (owner-computes partitioning, message combining, Safra
termination) build WDL databases — demonstrating that the paper's
algorithm is game-generic, as its introduction claims.

``status`` encoding: the resulting value array holds +1 (win), -1
(loss), 0 (draw) — convertible to kernel labels with
:func:`values_to_status`.
"""

from __future__ import annotations

import numpy as np

from ..games.base import CaptureGame, ChunkScan, WDLGame
from .values import LOSS, UNKNOWN, WIN

__all__ = ["WDLAsCapture", "values_to_status", "solve_wdl_parallel"]

_DB = 0  # the single database id


class WDLAsCapture(CaptureGame):
    """Adapter: one WDL game as a single-database capture game."""

    def __init__(self, game: WDLGame):
        self.game = game
        self.name = f"{game.name}(as-capture)"

    def db_sequence(self, target=None):
        return [_DB]

    def db_size(self, db_id=_DB) -> int:
        return self.game.size

    def value_bound(self, db_id=_DB) -> int:
        return 1

    def exit_db(self, db_id, capture):  # pragma: no cover - never capturing
        raise ValueError("WDL games have no capturing moves")

    def scan_chunk(self, db_id, start: int, stop: int) -> ChunkScan:
        scan = self.game.scan_chunk(start, stop)
        # Terminal win for the mover = exit worth +1; loss = -1; stalemate
        # style draws = 0.
        terminal_value = np.where(scan.terminal_win, 1, -1).astype(np.int64)
        if scan.terminal_draw is not None:
            terminal_value[scan.terminal_draw] = 0
        return ChunkScan(
            start=start,
            terminal=scan.terminal,
            terminal_value=terminal_value,
            legal=scan.legal,
            capture=np.zeros_like(scan.succ_index),
            succ_index=scan.succ_index,
        )

    def scan_positions(self, db_id, idx: np.ndarray, start: int = -1):
        """Arbitrary-index scan (chunk the underlying game per index).

        WDL substrates expose contiguous scans only, so gather per run of
        consecutive indices; fine for the bench/test sizes this is used at.
        """
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            return self.scan_chunk(db_id, 0, 0)
        parts = [self.scan_chunk(db_id, int(i), int(i) + 1) for i in idx]
        return ChunkScan(
            start=start,
            terminal=np.concatenate([p.terminal for p in parts]),
            terminal_value=np.concatenate([p.terminal_value for p in parts]),
            legal=np.concatenate([p.legal for p in parts]),
            capture=np.concatenate([p.capture for p in parts]),
            succ_index=np.concatenate([p.succ_index for p in parts]),
        )

    def predecessors_internal(self, db_id, indices: np.ndarray):
        return self.game.predecessors(indices)


def values_to_status(values: np.ndarray) -> np.ndarray:
    """Map ±1/0 capture values back to WIN/LOSS/UNKNOWN labels."""
    status = np.full(values.shape[0], UNKNOWN, dtype=np.uint8)
    status[values > 0] = WIN
    status[values < 0] = LOSS
    return status


def solve_wdl_parallel(game: WDLGame, config=None, max_events=None):
    """Solve a WDL game on the simulated cluster.

    Returns ``(status, DatabaseRunStats)`` with the same label encoding
    as :func:`repro.core.wdl.solve_wdl`.
    """
    from .parallel.driver import ParallelConfig, ParallelSolver

    capture = WDLAsCapture(game)
    solver = ParallelSolver(capture, config or ParallelConfig())
    values, stats = solver.solve_database(_DB, {}, max_events=max_events)
    return values_to_status(values), stats
