"""Retrograde-analysis solvers: sequential, parallel, and test oracles."""

from .bounds import BoundsResult, BoundsSolver, solve_bounds
from .combining import UPDATE_BYTES, CombiningBuffers, CombiningStats, UpdatePacket
from .graph import CSR, DatabaseGraph, WorkCounters, build_database_graph
from .kernel import RAProblem, RAResult, solve_kernel, threshold_init
from .multiproc import MultiprocessSolver
from .oracle import oracle_capture_db, oracle_capture_solve, oracle_wdl
from .pipeline import PipelineConfig, PipelineRunner, PipelineStatus
from .parallel.driver import DatabaseRunStats, ParallelConfig, ParallelSolver
from .parallel.worker import RAWorker, WorkerConfig
from .partition import (
    BlockPartition,
    CyclicPartition,
    HashPartition,
    Partition,
    balance_report,
    make_partition,
)
from .sequential import DatabaseReport, SequentialSolver, SolveReport
from .termination import BLACK, WHITE, SafraState, Token
from .values import LOSS, UNKNOWN, WIN, assemble_values, check_nested_thresholds
from .verify import BellmanReport, check_bellman, replay_certificate
from .wdl import WDLSolution, build_wdl_graph, solve_wdl
from .wdl_adapter import WDLAsCapture, solve_wdl_parallel, values_to_status

__all__ = [
    "CombiningBuffers",
    "CombiningStats",
    "UpdatePacket",
    "UPDATE_BYTES",
    "CSR",
    "DatabaseGraph",
    "WorkCounters",
    "build_database_graph",
    "RAProblem",
    "RAResult",
    "solve_kernel",
    "threshold_init",
    "oracle_capture_db",
    "oracle_capture_solve",
    "oracle_wdl",
    "ParallelConfig",
    "ParallelSolver",
    "DatabaseRunStats",
    "RAWorker",
    "WorkerConfig",
    "Partition",
    "BlockPartition",
    "CyclicPartition",
    "HashPartition",
    "make_partition",
    "balance_report",
    "SequentialSolver",
    "SolveReport",
    "DatabaseReport",
    "SafraState",
    "Token",
    "WHITE",
    "BLACK",
    "UNKNOWN",
    "WIN",
    "LOSS",
    "assemble_values",
    "check_nested_thresholds",
    "WDLSolution",
    "build_wdl_graph",
    "solve_wdl",
    "BoundsResult",
    "BoundsSolver",
    "solve_bounds",
    "BellmanReport",
    "check_bellman",
    "replay_certificate",
    "WDLAsCapture",
    "solve_wdl_parallel",
    "values_to_status",
    "MultiprocessSolver",
    "PipelineConfig",
    "PipelineRunner",
    "PipelineStatus",
]
