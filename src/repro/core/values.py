"""Value semantics and status encodings shared by all RA solvers.

Retrograde analysis runs as a *least-fixpoint* label propagation with
three states per position:

* ``UNKNOWN`` — not yet decided (positions left UNKNOWN at the fixpoint
  are the draws of the run);
* ``WIN`` — the mover reaches the run's objective;
* ``LOSS`` — the mover cannot avoid the opponent's objective.

For capture-difference games the objective is parameterized by a
threshold ``t >= 1``: WIN means ``value >= t`` and LOSS means
``value <= -t`` (see :mod:`repro.core.thresholds`).  For classic
win/draw/loss games the labels are the final answer.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "UNKNOWN",
    "WIN",
    "LOSS",
    "NO_EXIT",
    "status_array",
    "assemble_values",
    "check_nested_thresholds",
]

#: Position not yet finalized (drawn if still UNKNOWN at the fixpoint).
UNKNOWN = np.uint8(0)
#: Mover achieves the objective.
WIN = np.uint8(1)
#: Mover cannot avoid the opponent achieving the objective.
LOSS = np.uint8(2)

#: Sentinel for "no exit move" in best-exit arrays.  Any real exit value
#: of an n-stone database lies in [-n, n] with n <= 48, so -128 is safe.
NO_EXIT = np.int16(-32768)


def status_array(size: int) -> np.ndarray:
    """Fresh all-UNKNOWN status array."""
    return np.zeros(size, dtype=np.uint8)


def assemble_values(win_sets: list[np.ndarray], loss_sets: list[np.ndarray]) -> np.ndarray:
    """Combine per-threshold labels into capture-difference values.

    ``win_sets[t-1]`` / ``loss_sets[t-1]`` are bool arrays for threshold
    ``t`` (t = 1..n).  ``value = max{t : win_t}``, ``-max{t : loss_t}``,
    or 0 when the position is drawn at every threshold.
    """
    if not win_sets:
        raise ValueError("need at least one threshold")
    size = win_sets[0].shape[0]
    values = np.zeros(size, dtype=np.int16)
    # Iterate ascending so larger thresholds overwrite smaller ones.
    for t, (w, l) in enumerate(zip(win_sets, loss_sets), start=1):
        values[w] = t
        values[l] = -t
    return values


def check_nested_thresholds(
    win_sets: list[np.ndarray], loss_sets: list[np.ndarray]
) -> None:
    """Assert the soundness invariant ``W_{t+1} ⊆ W_t`` and ``L_{t+1} ⊆ L_t``.

    Forcing at least ``t+1`` stones trivially forces at least ``t``; a
    violation means a solver bug.  Raises ``AssertionError``.
    """
    for t in range(1, len(win_sets)):
        if (win_sets[t] & ~win_sets[t - 1]).any():
            raise AssertionError(f"W_{t+1} not contained in W_{t}")
        if (loss_sets[t] & ~loss_sets[t - 1]).any():
            raise AssertionError(f"L_{t+1} not contained in L_{t}")
