"""Actual-parallel solving on the host machine (multiprocessing).

Everything else in :mod:`repro.core.parallel` simulates a 1995 cluster;
this module is for users who just want their databases faster on a
modern multicore box.  The threshold runs of one database are mutually
independent, so they fan out across a process pool (``fork`` start
method: the prepared graph is inherited copy-on-write, no pickling of
the big arrays on the way in).

Results avoid pickling on the way *out* too: where POSIX shared memory
is available the parent allocates a :class:`~repro.core.shm.ShmArena`
and each worker writes its threshold labels / scan-chunk arrays
directly into its own disjoint region, so pool results shrink to small
metadata tuples — the modern analogue of the paper's message combining,
which likewise exists to drive per-position communication cost toward
zero.  The bytes that skipped the pickle path are reported as
``multiproc.ipc_bytes_saved``; ``use_shm=False`` (CLI ``--no-shm``)
keeps the original pickling fan-out, whose traffic is reported as
``multiproc.ipc_bytes_pickled``.  Both paths produce bit-identical
databases (differentially tested).

Both fan-outs (the scan chunks of graph construction and the threshold
runs) go through a :class:`~repro.resilience.SupervisedPool`: a child
killed mid-task costs one chunk replay, not the database, and shows up
as ``resilience.*`` counters in the metrics registry.  A replayed task
re-writes only its own arena region, so retries after a SIGKILL stay
bit-identical.  An optional :class:`~repro.resilience.RoundStore`
checkpoints each threshold's labels as they complete, so a killed build
resumes mid-database.

Falls back to in-process solving where ``fork`` is unavailable.
"""

from __future__ import annotations

import multiprocessing as mp
import time

import numpy as np

from ..games.base import CaptureGame
from ..obs import NULL_METRICS, names
from ..resilience import RetryPolicy, SupervisedPool
from .graph import build_database_graph, scan_chunk_to_parts
from .kernel import solve_kernel, threshold_init
from .shm import ShmArena, shm_available, shm_debug_requested
from .values import LOSS, NO_EXIT, WIN, assemble_values

__all__ = ["MultiprocessSolver"]

# Module globals inherited by forked workers (set per database).
_GRAPH = None
_SCAN = None  # (game, db_id, lower_values)
_FAULTS = None  # FaultPlan under test, None in production
_ARENA = None  # ShmArena for the zero-copy fan-out, None on the pickle path
_EDGE_CAP = 0  # per-chunk capacity of the arena's src/dst edge regions


def _solve_one_threshold(task):
    """Forked worker: one threshold run of the inherited graph.

    With an arena the status labels land in the worker's own row of the
    shared ``status`` array and only ``(t, None, kernel stats, seconds)``
    is pickled back; without one the labels ride the pool result.
    """
    row, t = task
    if _FAULTS is not None and _FAULTS.worker_kill is not None:
        _FAULTS.worker_kill.maybe_kill("threshold", t)
    t0 = time.perf_counter()
    result = solve_kernel(threshold_init(_GRAPH, t))
    stats = (result.rounds, result.parent_notifications)
    if _ARENA is None:
        return t, result.status, stats, time.perf_counter() - t0
    n = _GRAPH.size
    _ARENA.claim("status", row * n, (row + 1) * n, slot=row, owner=t)
    _ARENA["status"][row] = result.status
    return t, None, stats, time.perf_counter() - t0


def _scan_range(task):
    """Forked worker: scan one chunk of the database into graph parts.

    With an arena the chunk's arrays are written straight into the
    parent-allocated segments (``best_exit``/``out_degree`` at the
    chunk's position range, edges at the chunk's span of ``src``/``dst``)
    and ``payload`` comes back ``None``; without one the arrays
    themselves are pickled back.  The trailing element of the return
    tuple is the chunk's wall time in the child process, aggregated by
    the parent into the metrics registry.
    """
    chunk_no, (start, stop) = task
    if _FAULTS is not None and _FAULTS.worker_kill is not None:
        _FAULTS.worker_kill.maybe_kill("chunk", chunk_no)
    game, db_id, lower_values = _SCAN
    t0 = time.perf_counter()
    parts = scan_chunk_to_parts(game, db_id, lower_values, start, stop)
    counts = (parts.moves_generated, parts.exit_lookups)
    if _ARENA is None:
        payload = (parts.best_exit, parts.out_degree, parts.src, parts.dst)
        return (chunk_no, start, parts.n_edges, counts, payload,
                time.perf_counter() - t0)
    span = chunk_no * _EDGE_CAP
    _ARENA.claim("best_exit", start, stop, slot=chunk_no, owner=chunk_no)
    _ARENA.claim("out_degree", start, stop, slot=chunk_no, owner=chunk_no)
    _ARENA.claim("src", span, span + parts.n_edges,
                 slot=chunk_no, owner=chunk_no)
    _ARENA.claim("dst", span, span + parts.n_edges,
                 slot=chunk_no, owner=chunk_no)
    _ARENA["best_exit"][start:stop] = parts.best_exit
    _ARENA["out_degree"][start:stop] = parts.out_degree
    _ARENA["src"][span:span + parts.n_edges] = parts.src
    _ARENA["dst"][span:span + parts.n_edges] = parts.dst
    return (chunk_no, start, parts.n_edges, counts, None,
            time.perf_counter() - t0)


class MultiprocessSolver:
    """Threshold-parallel database construction on real cores."""

    def __init__(
        self,
        game: CaptureGame,
        workers: int | None = None,
        metrics=None,
        policy: RetryPolicy | None = None,
        faults=None,
        chunk: int = 1 << 15,
        use_shm: bool | None = None,
        shm_debug: bool | None = None,
    ):
        self.game = game
        self.workers = workers or mp.cpu_count()
        #: Registry under the ``multiproc.`` prefix.  Per-process wall
        #: times land in the (non-deterministic) timers family; the
        #: counters stay deterministic.  Supervision counters land under
        #: ``resilience.``.
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Retry/rebuild bounds for the supervised pools.
        self.policy = policy if policy is not None else RetryPolicy()
        #: Optional :class:`~repro.resilience.FaultPlan` (chaos testing).
        self.faults = faults
        #: Scan fan-out granularity (positions per chunk).
        self.chunk = int(chunk)
        #: Zero-copy fan-out through shared memory.  ``None`` means
        #: "whenever the platform supports it"; an explicit ``False``
        #: is the ``--no-shm`` escape hatch.
        if use_shm is None:
            use_shm = shm_available()
        self.use_shm = bool(use_shm) and shm_available()
        #: Arena race detector (the claims ledger).  ``None`` defers to
        #: the ``REPRO_SHM_DEBUG`` environment variable; the CLI exposes
        #: it as ``--shm-debug``.
        if shm_debug is None:
            shm_debug = shm_debug_requested()
        self.shm_debug = bool(shm_debug)
        try:
            self._context = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._context = None

    def solve_database(self, db_id, lower_values, round_store=None) -> np.ndarray:
        """Solve one database; ``round_store`` (a
        :class:`~repro.resilience.RoundStore`) resumes and checkpoints
        individual threshold runs for crash-safe long solves."""
        global _GRAPH, _FAULTS, _ARENA
        m = self.metrics
        t_db = time.perf_counter()
        graph = self._build_graph(db_id, lower_values)
        m.inc(names.MULTIPROC_DATABASES)
        m.inc(names.MULTIPROC_POSITIONS_SCANNED, graph.work.positions_scanned)
        m.inc(names.MULTIPROC_MOVES_GENERATED, graph.work.moves_generated)
        m.inc(names.MULTIPROC_EDGES_INTERNAL, graph.work.edges_internal)
        m.inc(names.MULTIPROC_EXIT_LOOKUPS, graph.work.exit_lookups)
        bound = self.game.value_bound(db_id)
        if bound == 0:
            values = graph.best_exit.astype(np.int16)
            values[values == np.int16(NO_EXIT)] = 0
            m.observe_seconds(
                names.MULTIPROC_SOLVE_DATABASE, time.perf_counter() - t_db
            )
            return values
        thresholds = list(range(1, bound + 1))
        statuses: dict = {}
        if round_store is not None:
            statuses = {
                t: s for t, s in round_store.load().items() if t in thresholds
            }
            if statuses:
                m.inc(names.RESILIENCE_ROUNDS_RESUMED, len(statuses))
        todo = [t for t in thresholds if t not in statuses]

        def record(t, status, kernel_stats, child_s):
            statuses[t] = status
            m.inc(names.MULTIPROC_PROPAGATION_ROUNDS, kernel_stats[0])
            m.inc(names.MULTIPROC_PARENT_NOTIFICATIONS, kernel_stats[1])
            m.observe_seconds(names.MULTIPROC_THRESHOLD_SECONDS, child_s)
            if round_store is not None:
                round_store.put(t, status)

        if self._context is None or self.workers <= 1 or bound == 1:
            for t in todo:
                t0 = time.perf_counter()
                result = solve_kernel(threshold_init(graph, t))
                record(
                    t,
                    result.status,
                    (result.rounds, result.parent_notifications),
                    time.perf_counter() - t0,
                )
        elif todo:
            _GRAPH = graph
            _FAULTS = self.faults
            arena = None
            if self.use_shm:
                arena = ShmArena(debug=self.shm_debug)
                arena.alloc("status", (len(todo), graph.size), np.uint8)
                arena.enable_claims(len(todo))
                m.inc(names.MULTIPROC_SHM_SEGMENTS, arena.segments)
            _ARENA = arena

            def on_result(i, out):
                t, status, kernel_stats, child_s = out
                if status is None:
                    # Copy the worker's row out of the arena: a local
                    # memcpy instead of a cross-process pickle.
                    status = np.array(arena["status"][i], copy=True)
                    m.inc(names.MULTIPROC_IPC_BYTES_SAVED, status.nbytes)
                else:
                    m.inc(names.MULTIPROC_IPC_BYTES_PICKLED, status.nbytes)
                record(t, status, kernel_stats, child_s)

            try:
                with SupervisedPool(
                    _solve_one_threshold,
                    max_workers=min(self.workers, len(todo)),
                    mp_context=self._context,
                    policy=self.policy,
                    metrics=m,
                ) as pool:
                    # Child-process wall times, aggregated pool-wide.
                    pool.map(
                        list(enumerate(todo)),
                        on_result=on_result,
                    )
                if arena is not None and arena.debug:
                    # Guarded: the counter must not appear (even at 0)
                    # in non-debug runs, or cross-path counter-parity
                    # assertions would see a phantom key.
                    m.inc(names.MULTIPROC_SHM_CLAIMS_CHECKED,
                          arena.check_claims())
            finally:
                _GRAPH = None
                _FAULTS = None
                _ARENA = None
                if arena is not None:
                    arena.close()
        m.inc(names.MULTIPROC_THRESHOLDS, len(thresholds))
        win_sets = [statuses[t] == WIN for t in thresholds]
        loss_sets = [statuses[t] == LOSS for t in thresholds]
        values = assemble_values(win_sets, loss_sets)
        m.observe_seconds(names.MULTIPROC_SOLVE_DATABASE, time.perf_counter() - t_db)
        return values

    def solve(self, target) -> dict:
        values: dict = {}
        for db_id in self.game.db_sequence(target):
            values[db_id] = self.solve_database(db_id, values)
        return values

    # ------------------------------------------------------------ internals

    def _build_graph(self, db_id, lower_values, chunk: int | None = None):
        """Graph construction with the scan fanned out across processes
        (the scan is the dominant cost for awari-sized databases)."""
        global _SCAN, _FAULTS, _ARENA, _EDGE_CAP
        chunk = self.chunk if chunk is None else chunk
        size = self.game.db_size(db_id)
        n_chunks = (size + chunk - 1) // chunk
        if self._context is None or self.workers <= 1 or n_chunks < 2:
            return build_database_graph(self.game, db_id, lower_values)
        from .graph import CSR, DatabaseGraph, WorkCounters

        tasks = [
            (i, (start, min(start + chunk, size)))
            for i, start in enumerate(range(0, size, chunk))
        ]
        work = WorkCounters(positions_scanned=size)
        arena = None
        edge_cap = 0
        if self.use_shm:
            # Every position has at most one internal move per move
            # slot, so chunk * slots bounds any chunk's edge count.
            slots = int(self.game.scan_chunk(db_id, 0, 1).legal.shape[1])
            edge_cap = chunk * slots
            arena = ShmArena(debug=self.shm_debug)
            arena.alloc("best_exit", (size,), np.int16)
            arena.alloc("out_degree", (size,), np.int32)
            arena.alloc("src", (n_chunks * edge_cap,), np.int64)
            arena.alloc("dst", (n_chunks * edge_cap,), np.int64)
            arena.enable_claims(n_chunks)
            self.metrics.inc(names.MULTIPROC_SHM_SEGMENTS, arena.segments)
        _SCAN = (self.game, db_id, lower_values)
        _FAULTS = self.faults
        _ARENA, _EDGE_CAP = arena, edge_cap
        try:
            with SupervisedPool(
                _scan_range,
                max_workers=self.workers,
                mp_context=self._context,
                policy=self.policy,
                metrics=self.metrics,
            ) as pool:
                scanned = pool.map(tasks)
            if arena is not None and arena.debug:
                self.metrics.inc(names.MULTIPROC_SHM_CLAIMS_CHECKED,
                                 arena.check_claims())
            best_exit, out_degree, src, dst = self._collect_scan(
                scanned, arena, chunk, edge_cap, size, work
            )
        finally:
            _SCAN = None
            _FAULTS = None
            _ARENA, _EDGE_CAP = None, 0
            if arena is not None:
                arena.close()
        forward = CSR.from_edges(size, src, dst)
        reverse = CSR.from_edges(size, dst, src)
        work.edges_internal = forward.n_edges
        return DatabaseGraph(
            db_id=db_id,
            size=size,
            best_exit=best_exit,
            out_degree=out_degree,
            forward=forward,
            reverse=reverse,
            work=work,
        )

    def _collect_scan(self, scanned, arena, chunk, edge_cap, size, work):
        """Assemble chunk results (either fan-out path) into graph arrays.

        Chunks arrive in task order and edges are concatenated in that
        order, so the edge list — and therefore the CSR — is bit-identical
        to a sequential :func:`build_database_graph` of the same database.
        """
        m = self.metrics
        srcs, dsts = [], []
        if arena is None:
            best_exit = np.empty(size, dtype=np.int16)
            out_degree = np.empty(size, dtype=np.int32)
        else:
            best_exit = arena.take("best_exit")
            out_degree = arena.take("out_degree")
        for chunk_no, start, n_edges, counts, payload, child_s in scanned:
            work.moves_generated += counts[0]
            work.exit_lookups += counts[1]
            m.inc(names.MULTIPROC_SCAN_CHUNKS)
            m.observe_seconds(names.MULTIPROC_SCAN_SECONDS, child_s)
            if payload is None:
                span = chunk_no * edge_cap
                srcs.append(
                    np.array(arena["src"][span:span + n_edges], copy=True)
                )
                dsts.append(
                    np.array(arena["dst"][span:span + n_edges], copy=True)
                )
                stop = min(start + chunk, size)
                m.inc(
                    names.MULTIPROC_IPC_BYTES_SAVED,
                    (stop - start) * (2 + 4) + 16 * n_edges,
                )
            else:
                be, deg, src, dst = payload
                stop = start + be.shape[0]
                best_exit[start:stop] = be
                out_degree[start:stop] = deg
                srcs.append(src)
                dsts.append(dst)
                m.inc(
                    names.MULTIPROC_IPC_BYTES_PICKLED,
                    be.nbytes + deg.nbytes + src.nbytes + dst.nbytes,
                )
        src = np.concatenate(srcs) if srcs else np.zeros(0, dtype=np.int64)
        dst = np.concatenate(dsts) if dsts else np.zeros(0, dtype=np.int64)
        return best_exit, out_degree, src, dst
