"""Actual-parallel solving on the host machine (multiprocessing).

Everything else in :mod:`repro.core.parallel` simulates a 1995 cluster;
this module is for users who just want their databases faster on a
modern multicore box.  The threshold runs of one database are mutually
independent, so they fan out across a process pool (``fork`` start
method: the prepared graph is inherited copy-on-write, no pickling of
the big arrays on the way in).

Both fan-outs (the scan chunks of graph construction and the threshold
runs) go through a :class:`~repro.resilience.SupervisedPool`: a child
killed mid-task costs one chunk replay, not the database, and shows up
as ``resilience.*`` counters in the metrics registry.  An optional
:class:`~repro.resilience.RoundStore` checkpoints each threshold's
labels as they complete, so a killed build resumes mid-database.

Falls back to in-process solving where ``fork`` is unavailable.
"""

from __future__ import annotations

import multiprocessing as mp
import time

import numpy as np

from ..games.base import CaptureGame
from ..obs import NULL_METRICS
from ..resilience import RetryPolicy, SupervisedPool
from .graph import build_database_graph
from .kernel import solve_kernel, threshold_init
from .values import LOSS, NO_EXIT, WIN, assemble_values

__all__ = ["MultiprocessSolver"]

# Module globals inherited by forked workers (set per database).
_GRAPH = None
_SCAN = None  # (game, db_id, lower_values)
_FAULTS = None  # FaultPlan under test, None in production


def _solve_one_threshold(t: int):
    if _FAULTS is not None and _FAULTS.worker_kill is not None:
        _FAULTS.worker_kill.maybe_kill("threshold", t)
    t0 = time.perf_counter()
    result = solve_kernel(threshold_init(_GRAPH, t))
    return t, result.status, time.perf_counter() - t0


def _scan_range(task):
    """Forked worker: scan one chunk of the database into graph parts.

    The trailing element of the return tuple is the chunk's wall time in
    the child process, aggregated by the parent into the metrics registry.
    """
    import numpy as _np

    chunk_no, (start, stop) = task
    if _FAULTS is not None and _FAULTS.worker_kill is not None:
        _FAULTS.worker_kill.maybe_kill("chunk", chunk_no)
    game, db_id, lower_values = _SCAN
    t0 = time.perf_counter()
    scan = game.scan_chunk(db_id, start, stop)
    rows = np.arange(start, stop, dtype=np.int64)
    best_exit = np.full(stop - start, -(2**15), dtype=np.int16)
    term = scan.terminal
    best_exit[term] = scan.terminal_value[term]
    cap_mask = scan.legal & (scan.capture > 0)
    if cap_mask.any():
        r, c = _np.nonzero(cap_mask)
        caps = scan.capture[r, c]
        succ = scan.succ_index[r, c]
        vals = _np.empty(r.shape[0], dtype=_np.int64)
        for amount in _np.unique(caps):
            m = caps == amount
            target = game.exit_db(db_id, int(amount))
            vals[m] = amount - lower_values[target][succ[m]].astype(_np.int64)
        _np.maximum.at(best_exit, r, vals.astype(_np.int16))
    int_mask = scan.legal & (scan.capture == 0)
    r, c = _np.nonzero(int_mask)
    out_degree = _np.zeros(stop - start, dtype=_np.int32)
    _np.add.at(out_degree, r, 1)
    elapsed = time.perf_counter() - t0
    return start, best_exit, out_degree, rows[r], scan.succ_index[r, c], elapsed


class MultiprocessSolver:
    """Threshold-parallel database construction on real cores."""

    def __init__(
        self,
        game: CaptureGame,
        workers: int | None = None,
        metrics=None,
        policy: RetryPolicy | None = None,
        faults=None,
        chunk: int = 1 << 15,
    ):
        self.game = game
        self.workers = workers or mp.cpu_count()
        #: Registry under the ``multiproc.`` prefix.  Per-process wall
        #: times land in the (non-deterministic) timers family; the
        #: counters stay deterministic.  Supervision counters land under
        #: ``resilience.``.
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Retry/rebuild bounds for the supervised pools.
        self.policy = policy if policy is not None else RetryPolicy()
        #: Optional :class:`~repro.resilience.FaultPlan` (chaos testing).
        self.faults = faults
        #: Scan fan-out granularity (positions per chunk).
        self.chunk = int(chunk)
        try:
            self._context = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._context = None

    def solve_database(self, db_id, lower_values, round_store=None) -> np.ndarray:
        """Solve one database; ``round_store`` (a
        :class:`~repro.resilience.RoundStore`) resumes and checkpoints
        individual threshold runs for crash-safe long solves."""
        global _GRAPH, _FAULTS
        m = self.metrics
        t_db = time.perf_counter()
        graph = self._build_graph(db_id, lower_values)
        m.inc("multiproc.databases")
        m.inc("multiproc.positions_scanned", graph.size)
        bound = self.game.value_bound(db_id)
        if bound == 0:
            values = graph.best_exit.astype(np.int16)
            values[values == np.int16(NO_EXIT)] = 0
            m.observe_seconds(
                "multiproc.solve_database", time.perf_counter() - t_db
            )
            return values
        thresholds = list(range(1, bound + 1))
        statuses: dict = {}
        if round_store is not None:
            statuses = {
                t: s for t, s in round_store.load().items() if t in thresholds
            }
            if statuses:
                m.inc("resilience.rounds_resumed", len(statuses))
        todo = [t for t in thresholds if t not in statuses]

        def record(t, status, child_s):
            statuses[t] = status
            m.observe_seconds("multiproc.threshold_seconds", child_s)
            if round_store is not None:
                round_store.put(t, status)

        if self._context is None or self.workers <= 1 or bound == 1:
            for t in todo:
                t0 = time.perf_counter()
                status = solve_kernel(threshold_init(graph, t)).status
                record(t, status, time.perf_counter() - t0)
        elif todo:
            _GRAPH = graph
            _FAULTS = self.faults
            try:
                with SupervisedPool(
                    _solve_one_threshold,
                    max_workers=min(self.workers, len(todo)),
                    mp_context=self._context,
                    policy=self.policy,
                    metrics=m,
                ) as pool:
                    # Child-process wall times, aggregated pool-wide.
                    pool.map(
                        todo,
                        on_result=lambda i, out: record(*out),
                    )
            finally:
                _GRAPH = None
                _FAULTS = None
        m.inc("multiproc.thresholds", len(thresholds))
        win_sets = [statuses[t] == WIN for t in thresholds]
        loss_sets = [statuses[t] == LOSS for t in thresholds]
        values = assemble_values(win_sets, loss_sets)
        m.observe_seconds("multiproc.solve_database", time.perf_counter() - t_db)
        return values

    def solve(self, target) -> dict:
        values: dict = {}
        for db_id in self.game.db_sequence(target):
            values[db_id] = self.solve_database(db_id, values)
        return values

    # ------------------------------------------------------------ internals

    def _build_graph(self, db_id, lower_values, chunk: int | None = None):
        """Graph construction with the scan fanned out across processes
        (the scan is the dominant cost for awari-sized databases)."""
        global _SCAN, _FAULTS
        chunk = self.chunk if chunk is None else chunk
        size = self.game.db_size(db_id)
        n_chunks = (size + chunk - 1) // chunk
        if self._context is None or self.workers <= 1 or n_chunks < 2:
            return build_database_graph(self.game, db_id, lower_values)
        from .graph import CSR, DatabaseGraph, WorkCounters

        tasks = [
            (i, (start, min(start + chunk, size)))
            for i, start in enumerate(range(0, size, chunk))
        ]
        best_exit = np.empty(size, dtype=np.int16)
        out_degree = np.empty(size, dtype=np.int32)
        work = WorkCounters(positions_scanned=size)
        _SCAN = (self.game, db_id, lower_values)
        _FAULTS = self.faults
        try:
            with SupervisedPool(
                _scan_range,
                max_workers=self.workers,
                mp_context=self._context,
                policy=self.policy,
                metrics=self.metrics,
            ) as pool:
                scanned = pool.map(tasks)
        finally:
            _SCAN = None
            _FAULTS = None
        srcs, dsts = [], []
        for start, be, deg, src, dst, child_s in scanned:
            stop = start + be.shape[0]
            best_exit[start:stop] = be
            out_degree[start:stop] = deg
            srcs.append(src)
            dsts.append(dst)
            self.metrics.inc("multiproc.scan_chunks")
            self.metrics.observe_seconds("multiproc.scan_seconds", child_s)
        src = np.concatenate(srcs) if srcs else np.zeros(0, dtype=np.int64)
        dst = np.concatenate(dsts) if dsts else np.zeros(0, dtype=np.int64)
        forward = CSR.from_edges(size, src, dst)
        reverse = CSR.from_edges(size, dst, src)
        work.edges_internal = forward.n_edges
        work.moves_generated = forward.n_edges  # captures folded into exits
        return DatabaseGraph(
            db_id=db_id,
            size=size,
            best_exit=best_exit,
            out_degree=out_degree,
            forward=forward,
            reverse=reverse,
            work=work,
        )
