"""Name-based game registry for the CLI and scripts."""

from __future__ import annotations

from .awari import AwariRules, GrandSlam
from .awari_db import AwariCaptureGame
from .base import CaptureGame
from .kalah import KalahCaptureGame

__all__ = ["capture_game", "CAPTURE_GAMES"]

CAPTURE_GAMES = ("awari", "awari-slam-allowed", "awari-no-feed", "kalah")


def capture_game(name: str) -> CaptureGame:
    """Instantiate a capture game (and rule variant) by name."""
    if name == "awari":
        return AwariCaptureGame()
    if name == "awari-slam-allowed":
        return AwariCaptureGame(AwariRules(grand_slam=GrandSlam.ALLOWED))
    if name == "awari-no-feed":
        return AwariCaptureGame(AwariRules(must_feed=False))
    if name == "kalah":
        return KalahCaptureGame()
    raise ValueError(
        f"unknown game {name!r}; choose from {', '.join(CAPTURE_GAMES)}"
    )


def capture_game_for(dbs) -> CaptureGame:
    """Reconstruct the right game for a loaded
    :class:`~repro.db.store.DatabaseSet` (name plus rule string)."""
    name = dbs.game_name
    if name in ("kalah", "kalah-nt"):
        return KalahCaptureGame()
    if name.startswith("awari"):
        rules = AwariRules()
        if dbs.rules:
            fields = dict(
                part.strip().split("=", 1)
                for part in dbs.rules.split(",")
                if "=" in part
            )
            rules = AwariRules(
                grand_slam=GrandSlam(
                    fields.get("grand_slam", rules.grand_slam.value)
                ),
                must_feed=fields.get("must_feed", "True") == "True",
            )
        return AwariCaptureGame(rules)
    raise ValueError(f"cannot reconstruct a game for {name!r}")
