"""The KRK and KQK chess endgames (king + rook/queen vs king).

Chess endgame databases are the original application of retrograde
analysis (Thompson's KQKR etc.) and the canonical example the paper's
introduction leans on.  KRK is the textbook case: 64³ piece placements ×
2 sides to move, with the famous result that white mates in **at most 16
moves** from every winning position; the queen variant mates in **at
most 10**.  Both are hard external anchors the test suite checks against
the solver's distance output.

Encoding
--------
``index = stm·64³ + wk·64² + wr·64 + bk + (stm, wk, wr, bk as below)``
with ``stm`` 0 = white to move, 1 = black to move; squares 0..63 with
file = s % 8, rank = s // 8.  One extra sentinel position (the last
index) represents "rook captured" — a terminal draw that black's
rook-capturing moves lead to.

Positions that are not legal chess positions (coincident pieces,
adjacent kings, or the side *not* to move in check) are marked as
terminal draws; they are unreachable from legal play (no legal move
generates them) and are excluded from statistics by :meth:`legal_mask`.

Rules are full FIDE for this material: sliding rook blocked by either
king, black may capture an undefended rook (→ draw sentinel), checkmate
and stalemate detected exactly.
"""

from __future__ import annotations

import numpy as np

from .base import WDLGame, WDLScan

__all__ = ["KRKGame", "WHITE", "BLACK"]

WHITE = 0
BLACK = 1

_N_SQ = 64
#: move slots: white = 8 king directions + 4 rook rays × 7 steps = 36;
#: black = 8 king directions.  One shared layout sized for white.
_K_DIRS = np.array(
    [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)],
    dtype=np.int64,
)
_R_DIRS = np.array([(-1, 0), (1, 0), (0, -1), (0, 1)], dtype=np.int64)
_B_DIRS = np.array([(-1, -1), (-1, 1), (1, -1), (1, 1)], dtype=np.int64)


def _king_targets() -> np.ndarray:
    """(64, 8) target square per direction, -1 off board."""
    out = np.full((_N_SQ, 8), -1, dtype=np.int64)
    for s in range(_N_SQ):
        r, f = divmod(s, 8)
        for d, (dr, df) in enumerate(_K_DIRS):
            rr, ff = r + dr, f + df
            if 0 <= rr < 8 and 0 <= ff < 8:
                out[s, d] = rr * 8 + ff
    return out


def _slider_targets(dirs: np.ndarray) -> np.ndarray:
    """(64, rays, 7) target square per ray/step, -1 off board."""
    rays = dirs.shape[0]
    out = np.full((_N_SQ, rays, 7), -1, dtype=np.int64)
    for s in range(_N_SQ):
        r, f = divmod(s, 8)
        for d, (dr, df) in enumerate(dirs):
            for k in range(1, 8):
                rr, ff = r + dr * k, f + df * k
                if 0 <= rr < 8 and 0 <= ff < 8:
                    out[s, d, k - 1] = rr * 8 + ff
    return out


_KT = _king_targets()
_RT = _slider_targets(_R_DIRS)
_QT = _slider_targets(np.concatenate([_R_DIRS, _B_DIRS]))
_ADJ = np.zeros((_N_SQ, _N_SQ), dtype=bool)
for _s in range(_N_SQ):
    for _t in _KT[_s]:
        if _t >= 0:
            _ADJ[_s, _t] = True


def _between_on_line(a: np.ndarray, b: np.ndarray, x: np.ndarray) -> np.ndarray:
    """True where ``x`` lies strictly between ``a`` and ``b`` on a shared
    rank, file or diagonal (all arrays of squares)."""
    ar, af = a // 8, a % 8
    br, bf = b // 8, b % 8
    xr, xf = x // 8, x % 8
    r_in = (np.minimum(ar, br) <= xr) & (xr <= np.maximum(ar, br))
    f_in = (np.minimum(af, bf) < xf) & (xf < np.maximum(af, bf))
    same_rank = (ar == br) & (xr == ar)
    rank_between = same_rank & f_in
    same_file = (af == bf) & (xf == af)
    file_between = same_file & (np.minimum(ar, br) < xr) & (xr < np.maximum(ar, br))
    same_diag = (ar - br == af - bf) & (xr - br == xf - bf)
    same_anti = (ar - br == bf - af) & (xr - br == bf - xf)
    diag_between = (same_diag | same_anti) & f_in & r_in
    return rank_between | file_between | diag_between


def _rook_sees(wr: np.ndarray, target: np.ndarray, blocker: np.ndarray) -> np.ndarray:
    """Rook on ``wr`` attacks ``target`` with a single ``blocker`` square
    (the only other piece on the line that matters)."""
    same_line = ((wr // 8 == target // 8) | (wr % 8 == target % 8)) & (wr != target)
    return same_line & ~_between_on_line(wr, target, blocker)


def _queen_sees(wq: np.ndarray, target: np.ndarray, blocker: np.ndarray) -> np.ndarray:
    """Queen attack: rook lines plus diagonals, same blocker rule."""
    qr, qf = wq // 8, wq % 8
    tr, tf = target // 8, target % 8
    diagonal = (np.abs(qr - tr) == np.abs(qf - tf)) & (wq != target)
    straight = ((qr == tr) | (qf == tf)) & (wq != target)
    return (diagonal | straight) & ~_between_on_line(wq, target, blocker)


class KRKGame(WDLGame):
    """King + heavy piece vs king, solved for the side with the piece.

    ``piece="rook"`` is KRK (mate in at most 16); ``piece="queen"`` is
    KQK (mate in at most 10) — both classic external anchors.
    """

    #: index of the "piece captured" draw sentinel.
    DRAW_SINK = 2 * _N_SQ**3

    def __init__(self, piece: str = "rook"):
        if piece not in ("rook", "queen"):
            raise ValueError(f"unsupported piece {piece!r}")
        self.piece = piece
        self.name = "chess-krk" if piece == "rook" else "chess-kqk"
        self._sees = _rook_sees if piece == "rook" else _queen_sees
        self._rays = _RT if piece == "rook" else _QT
        self._size = 2 * _N_SQ**3 + 1

    @property
    def size(self) -> int:
        return self._size

    # ------------------------------------------------------------ encoding

    def encode(self, stm, wk, wr, bk) -> np.ndarray:
        stm = np.asarray(stm, dtype=np.int64)
        wk = np.asarray(wk, dtype=np.int64)
        wr = np.asarray(wr, dtype=np.int64)
        bk = np.asarray(bk, dtype=np.int64)
        return ((stm * _N_SQ + wk) * _N_SQ + wr) * _N_SQ + bk

    def decode(self, idx: np.ndarray):
        idx = np.asarray(idx, dtype=np.int64)
        bk = idx % _N_SQ
        rest = idx // _N_SQ
        wr = rest % _N_SQ
        rest //= _N_SQ
        wk = rest % _N_SQ
        stm = rest // _N_SQ
        return stm, wk, wr, bk

    # ------------------------------------------------------------ legality

    def legal_mask(self, idx: np.ndarray) -> np.ndarray:
        """True for real chess positions (sentinel excluded)."""
        idx = np.asarray(idx, dtype=np.int64)
        ok = idx < self.DRAW_SINK
        stm, wk, wr, bk = self.decode(np.where(ok, idx, 0))
        distinct = (wk != wr) & (wk != bk) & (wr != bk)
        kings_apart = ~_ADJ[wk, bk]
        # White to move: black must not already be in check.
        black_checked = self._sees(wr, bk, wk)
        side_ok = (stm == BLACK) | ~black_checked
        return ok & distinct & kings_apart & side_ok

    def in_check(self, idx: np.ndarray) -> np.ndarray:
        """Black king attacked by the heavy piece (any side to move)."""
        _, wk, wr, bk = self.decode(np.asarray(idx, dtype=np.int64))
        return self._sees(wr, bk, wk)

    # ---------------------------------------------------------------- scan

    def scan_chunk(self, start: int, stop: int) -> WDLScan:
        idx = np.arange(start, stop, dtype=np.int64)
        n = idx.shape[0]
        legal_pos = self.legal_mask(idx)
        stm, wk, wr, bk = self.decode(idx)
        slots = 8 + self._rays.shape[1] * 7
        legal = np.zeros((n, slots), dtype=bool)
        succ = np.zeros((n, slots), dtype=np.int64)

        white = legal_pos & (stm == WHITE)
        black = legal_pos & (stm == BLACK)

        # --- white king moves (slots 0..7)
        for d in range(8):
            t = _KT[wk, d]
            ok = (
                white
                & (t >= 0)
                & (t != wr)
                & (t != bk)
                & ~_ADJ[np.maximum(t, 0), bk]
            )
            legal[:, d] = ok
            succ[ok, d] = self.encode(BLACK, t[ok], wr[ok], bk[ok])

        # --- white slider moves (slots 8..), stopped by either king
        for d in range(self._rays.shape[1]):
            ray_blocked = ~white
            for k in range(7):
                s = 8 + d * 7 + k
                t = self._rays[wr, d, k]
                on_board = t >= 0
                hits_piece = on_board & ((t == wk) | (t == bk))
                ok = white & ~ray_blocked & on_board & ~hits_piece
                legal[:, s] = ok
                succ[ok, s] = self.encode(BLACK, wk[ok], t[ok], bk[ok])
                ray_blocked = ray_blocked | ~on_board | hits_piece

        # --- black king moves (slots 0..7 of black rows)
        for d in range(8):
            t = _KT[bk, d]
            on = black & (t >= 0)
            t_safe = np.maximum(t, 0)
            near_wk = _ADJ[t_safe, wk]
            onto_wk = t_safe == wk
            captures_rook = t_safe == wr
            # After the king moves, its old square no longer blocks the
            # slider, and a capture removes it entirely.
            attacked = self._sees(wr, t_safe, wk) & ~captures_rook
            ok = on & ~near_wk & ~onto_wk & ~attacked
            # Capturing a defended rook is illegal (already covered by
            # near_wk? no — defended means wk adjacent to wr).
            defended = _ADJ[wr, wk]
            ok &= ~(captures_rook & defended)
            legal[:, d] |= ok
            cap = ok & captures_rook
            plain = ok & ~captures_rook
            succ[plain, d] = self.encode(WHITE, wk[plain], wr[plain], t[plain])
            succ[cap, d] = self.DRAW_SINK

        terminal = ~legal.any(axis=1)
        checked = self.in_check(idx)
        # Checkmate: black to move, in check, no moves -> mover loses.
        # Stalemate or any illegal/sentinel position -> terminal draw.
        is_mate = terminal & black & checked
        terminal_draw = terminal & ~is_mate
        return WDLScan(
            start=start,
            terminal=terminal,
            terminal_win=np.zeros(n, dtype=bool),
            legal=legal,
            succ_index=succ,
            terminal_draw=terminal_draw,
        )

    # --------------------------------------------------------- predecessors

    _reverse = None

    def predecessors(self, indices: np.ndarray):
        """Reverse edges via a lazily built transposed move graph."""
        if self._reverse is None:
            from ..core.wdl import build_wdl_graph

            self._reverse = build_wdl_graph(self, chunk=1 << 15).reverse
        return self._reverse.neighbors_of(np.asarray(indices, dtype=np.int64))

    # ------------------------------------------------------------- helpers

    def square_name(self, s: int) -> str:
        return "abcdefgh"[s % 8] + str(s // 8 + 1)

    def describe(self, idx: int) -> str:
        stm, wk, wr, bk = (int(x) for x in self.decode(np.int64(idx)))
        side = "white" if stm == WHITE else "black"
        letter = "R" if self.piece == "rook" else "Q"
        return (
            f"K{self.square_name(wk)} {letter}{self.square_name(wr)} "
            f"k{self.square_name(bk)}, {side} to move"
        )
