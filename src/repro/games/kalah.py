"""Kalah (store-based mancala) as a second capture-game substrate.

The paper presents retrograde analysis as a technique "applied
successfully to several games"; this module exercises the framework on a
mancala variant with very different structure from awari:

* sowing passes through the mover's **store** — every stone dropped
  there is captured immediately, so most moves are exits and the
  internal (non-capturing) graph is much sparser;
* the capture rule is positional: a last stone landing in an *empty* own
  pit captures it together with the opposite pit's contents;
* there is no feeding obligation; when the mover's side is empty the
  opponent keeps all remaining stones.

Rule note: the "extra move when the last stone lands in the store" rule
of tournament Kalah is **omitted** (it breaks strict move alternation,
which the endgame-database formulation relies on); this simplified
variant is standard in the game-solving literature and is named
``kalah-nt`` (no extra turn) throughout.

Board encoding matches awari — 12 pits, mover owns 0-5, stores are
implicit (captured stones leave play) — so the combinatorial indexer is
shared.
"""

from __future__ import annotations

import numpy as np

from .awari import MoveOutcome, N_MOVE_SLOTS, N_PITS, _swap_sides
from .awari_index import AwariIndexer
from .base import CaptureGame, ChunkScan

__all__ = ["KalahGame", "KalahCaptureGame"]

#: Sowing path: own pits 0..5, own store (slot 12), opponent pits 6..11.
#: The opponent's store is skipped entirely.
_PATH = np.array([0, 1, 2, 3, 4, 5, 12, 6, 7, 8, 9, 10, 11], dtype=np.int64)
_PATH_LEN = 13
#: position of each slot in the path (slot 12 = own store).
_PATH_POS = np.zeros(13, dtype=np.int64)
_PATH_POS[_PATH] = np.arange(_PATH_LEN)
#: opposite pit of each own pit.
_OPPOSITE = 11 - np.arange(6)


class KalahGame:
    """Vectorized kalah-nt move/unmove generation."""

    name = "kalah-nt"

    def __init__(self):
        self._indexers: dict[int, AwariIndexer] = {}

    def indexer(self, n_stones: int) -> AwariIndexer:
        idx = self._indexers.get(n_stones)
        if idx is None:
            idx = self._indexers[n_stones] = AwariIndexer(n_stones)
        return idx

    # ---------------------------------------------------------------- sow

    def sow(self, boards: np.ndarray, pits: np.ndarray):
        """Sow from ``pits`` along the kalah path.

        Returns ``(sown_13, last_path_pos, stones)`` where ``sown_13`` has
        13 columns (column 12 = stones dropped in the mover's store) and
        ``last_path_pos`` indexes the path.  Unlike awari, the origin
        *does* receive stones on later laps.
        """
        boards = np.asarray(boards, dtype=np.int16)
        pits = np.asarray(pits, dtype=np.int64)
        n = boards.shape[0]
        rows = np.arange(n)
        stones = boards[rows, pits].astype(np.int64)
        wide = np.concatenate(
            [boards, np.zeros((n, 1), dtype=np.int16)], axis=1
        )
        wide[rows, pits] = 0
        start = _PATH_POS[pits]
        # Path distance from the origin to each slot (1..13 after start).
        dist = (np.arange(_PATH_LEN)[None, :] - start[:, None]) % _PATH_LEN
        dist[dist == 0] = _PATH_LEN  # the origin is the *last* slot of a lap
        q, r = np.divmod(stones, _PATH_LEN)
        inc = q[:, None] + (dist <= r[:, None])
        # inc is indexed by path position; scatter back to slots.
        wide_inc = np.zeros_like(wide)
        wide_inc[:, _PATH] = inc.astype(np.int16)
        sown = wide + wide_inc
        last_rel = np.where(r > 0, r, np.int64(_PATH_LEN))
        last_pos = (start + last_rel) % _PATH_LEN
        return sown, last_pos, stones

    # -------------------------------------------------------------- moves

    def apply_move(self, boards: np.ndarray, pits: np.ndarray) -> MoveOutcome:
        """Apply one move slot; captured = store gains + opposite capture."""
        boards = np.asarray(boards, dtype=np.int16)
        if boards.ndim != 2 or boards.shape[1] != N_PITS:
            raise ValueError(f"boards must be (N, {N_PITS}), got {boards.shape}")
        pits = np.broadcast_to(np.asarray(pits, dtype=np.int64), boards.shape[:1]).copy()
        if pits.size and ((pits < 0) | (pits >= N_MOVE_SLOTS)).any():
            raise ValueError("move pits must be in 0..5")
        n = boards.shape[0]
        rows = np.arange(n)
        sown, last_pos, stones = self.sow(boards, pits)
        legal = stones > 0
        captured = sown[:, 12].astype(np.int64)

        # Positional capture: last stone in an own pit that now holds
        # exactly one stone (it was empty), opposite pit non-empty.
        last_slot = _PATH[last_pos]
        own_last = legal & (last_slot < 6)
        lands_empty = np.zeros(n, dtype=bool)
        lands_empty[own_last] = sown[rows[own_last], last_slot[own_last]] == 1
        opp_slot = np.where(last_slot < 6, 11 - last_slot, 0)
        opp_count = sown[rows, opp_slot].astype(np.int64)
        grab = own_last & lands_empty & (opp_count > 0)
        if grab.any():
            captured[grab] += opp_count[grab] + 1
            sown[rows[grab], last_slot[grab]] = 0
            sown[rows[grab], opp_slot[grab]] = 0

        result = _swap_sides(sown[:, :N_PITS])
        return MoveOutcome(legal=legal, captured=captured, boards=result)

    def legal_moves(self, boards: np.ndarray) -> np.ndarray:
        boards = np.asarray(boards, dtype=np.int16)
        return boards[:, :6] > 0

    def terminal_values(self, boards: np.ndarray):
        """No move (mover's side empty): the opponent keeps the rest."""
        boards = np.asarray(boards, dtype=np.int16)
        is_terminal = (boards[:, :6] == 0).all(axis=1)
        value = -boards[:, 6:].sum(axis=1).astype(np.int64)
        return is_terminal, value

    def board_to_string(self, board: np.ndarray) -> str:
        """Human-readable two-row rendering (opponent row reversed)."""
        board = np.asarray(board).ravel()
        opp = " ".join(f"{int(v):2d}" for v in board[11:5:-1])
        mov = " ".join(f"{int(v):2d}" for v in board[:6])
        return f"opp  [{opp}]\nmove [{mov}]"

    # -------------------------------------------------------------- unmove

    def noncapture_predecessors(self, boards: np.ndarray, max_stones: int):
        """Non-capturing predecessors by un-sowing (forward-verified).

        A non-capturing kalah move never reaches the store, so it sows at
        most ``5 - j`` stones within the mover's own row; the origin is
        empty in the (unswapped) child.
        """
        boards = np.asarray(boards, dtype=np.int16)
        n = boards.shape[0]
        if n == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros((0, N_PITS), dtype=np.int16),
            )
        pre = _swap_sides(boards)
        out_rows, out_boards = [], []
        for pit in range(N_MOVE_SLOTS - 1):  # pit 5 always reaches the store
            cand = np.flatnonzero(pre[:, pit] == 0)
            if cand.size == 0:
                continue
            base = pre[cand]
            for s in range(1, 6 - pit):
                parent = base.copy()
                parent[:, pit + 1 : pit + 1 + s] -= 1
                parent[:, pit] = s
                ok = (parent >= 0).all(axis=1)
                if not ok.any():
                    continue
                rows = cand[ok]
                pboards = parent[ok]
                outcome = self.apply_move(pboards, np.full(rows.size, pit))
                good = (
                    outcome.legal
                    & (outcome.captured == 0)
                    & (outcome.boards == boards[rows]).all(axis=1)
                )
                if good.any():
                    out_rows.append(rows[good])
                    out_boards.append(pboards[good])
        if not out_rows:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros((0, N_PITS), dtype=np.int16),
            )
        return np.concatenate(out_rows), np.concatenate(out_boards, axis=0)


class KalahCaptureGame(CaptureGame):
    """Kalah-nt wired into the capture-game protocol (databases by stone
    count, like awari — but captures as small as one stone occur)."""

    def __init__(self):
        self.engine = KalahGame()
        self.name = "kalah-nt"

    def db_sequence(self, target: int):
        if target < 0:
            raise ValueError("stone count must be >= 0")
        return list(range(target + 1))

    def db_size(self, db_id: int) -> int:
        return self.engine.indexer(db_id).count

    def value_bound(self, db_id: int) -> int:
        return int(db_id)

    def exit_db(self, db_id: int, capture: int) -> int:
        if capture <= 0 or capture > db_id:
            raise ValueError(f"invalid capture {capture} from {db_id}-stone db")
        return db_id - capture

    def scan_chunk(self, db_id: int, start: int, stop: int) -> ChunkScan:
        indexer = self.engine.indexer(db_id)
        if not (0 <= start <= stop <= indexer.count):
            raise ValueError(f"bad chunk [{start}, {stop}) for db {db_id}")
        idx = np.arange(start, stop, dtype=np.int64)
        boards = indexer.unrank(idx)
        n = idx.shape[0]
        legal = np.zeros((n, N_MOVE_SLOTS), dtype=bool)
        capture = np.zeros((n, N_MOVE_SLOTS), dtype=np.int64)
        succ = np.zeros((n, N_MOVE_SLOTS), dtype=np.int64)
        for pit in range(N_MOVE_SLOTS):
            outcome = self.engine.apply_move(boards, np.full(n, pit))
            legal[:, pit] = outcome.legal
            ok = outcome.legal
            if not ok.any():
                continue
            caps = outcome.captured[ok]
            capture[ok, pit] = caps
            sub = outcome.boards[ok]
            col = np.zeros(int(ok.sum()), dtype=np.int64)
            for c in np.unique(caps):
                m = caps == c
                col[m] = self.engine.indexer(db_id - int(c)).rank(sub[m])
            succ[ok, pit] = col
        terminal = ~legal.any(axis=1)
        terminal_value = -boards[:, 6:].sum(axis=1).astype(np.int64)
        return ChunkScan(
            start=start,
            terminal=terminal,
            terminal_value=terminal_value,
            legal=legal,
            capture=capture,
            succ_index=succ,
        )

    def predecessors_internal(self, db_id: int, indices: np.ndarray):
        indexer = self.engine.indexer(db_id)
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        boards = indexer.unrank(idx)
        child_row, pred_boards = self.engine.noncapture_predecessors(
            boards, max_stones=db_id
        )
        if child_row.size == 0:
            return child_row, np.zeros(0, dtype=np.int64)
        return child_row, indexer.rank(pred_boards)
