"""Awari rules engine, fully vectorized.

Board convention
----------------
A position is a length-12 vector of pit counts.  Pits 0-5 belong to the
player to move ("the mover"); pits 6-11 to the opponent.  Sowing proceeds
counterclockwise in increasing pit order, wrapping 11 -> 0 and always
skipping the origin pit, so a pit just emptied stays empty until the
opponent sows into it.

A move from pit ``i`` with ``s`` stones distributes ``q = s // 11`` stones
to every other pit plus one extra stone to the ``r = s % 11`` pits
immediately after ``i``.  If the last stone lands in an opponent pit whose
new count is 2 or 3, that pit is captured together with the unbroken chain
of preceding opponent pits holding 2 or 3 stones.

Rule variants (all configurable through :class:`AwariRules`):

* **Grand slam** — a capture that would take *every* opponent stone:
  ``CAPTURE_NOTHING`` (move stands, nothing captured; the default,
  matching common tournament rules), ``ALLOWED`` or ``FORBIDDEN``.
* **Feeding** — if the opponent's side is empty, the mover must play a
  move that reaches the opponent's side when one exists.
* **Starvation end** — when the mover has no legal move the game ends and
  each player keeps the stones remaining on their own side, i.e. the value
  to the mover is ``(mover stones) - (opponent stones)``.

Endgame-database semantics: the *value* of a position is the optimal
capture difference (mover's future captures minus the opponent's) with the
convention that infinite non-capturing play yields 0 for both sides.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .awari_index import AwariIndexer

__all__ = ["GrandSlam", "AwariRules", "AwariGame", "MoveOutcome"]

N_PITS = 12
N_MOVE_SLOTS = 6  # the mover can only sow from pits 0..5
_MOVER = slice(0, 6)
_OPP = slice(6, 12)


class GrandSlam(enum.Enum):
    """How to treat a capture that would empty the opponent's side."""

    ALLOWED = "allowed"
    CAPTURE_NOTHING = "capture_nothing"
    FORBIDDEN = "forbidden"


@dataclass(frozen=True)
class AwariRules:
    """Immutable rule configuration for an awari game."""

    grand_slam: GrandSlam = GrandSlam.CAPTURE_NOTHING
    must_feed: bool = True

    def describe(self) -> str:
        return f"grand_slam={self.grand_slam.value}, must_feed={self.must_feed}"


@dataclass
class MoveOutcome:
    """Result of applying one move slot to a batch of boards.

    Attributes
    ----------
    legal:
        Boolean mask; illegal entries of the other arrays are undefined.
    captured:
        Stones captured by the move (0 for non-capturing moves).
    boards:
        Successor boards *from the new mover's perspective* (sides swapped).
    """

    legal: np.ndarray
    captured: np.ndarray
    boards: np.ndarray


def _swap_sides(boards: np.ndarray) -> np.ndarray:
    """Return boards viewed from the other player's perspective."""
    return np.concatenate([boards[:, _OPP], boards[:, _MOVER]], axis=1)


class AwariGame:
    """Vectorized awari move/unmove generation and terminal evaluation."""

    name = "awari"

    def __init__(self, rules: AwariRules | None = None):
        self.rules = rules or AwariRules()
        self._indexers: dict[int, AwariIndexer] = {}
        # delta[i, j] = (j - i) mod 12, used to compute sowing increments.
        j = np.arange(N_PITS)
        self._delta = (j[None, :] - j[:, None]) % N_PITS

    # ------------------------------------------------------------- indexing

    def indexer(self, n_stones: int) -> AwariIndexer:
        """Cached :class:`AwariIndexer` for the ``n_stones`` database."""
        idx = self._indexers.get(n_stones)
        if idx is None:
            idx = self._indexers[n_stones] = AwariIndexer(n_stones)
        return idx

    # ----------------------------------------------------------------- sow

    def sow(self, boards: np.ndarray, pits: np.ndarray):
        """Sow from ``pits`` without evaluating captures or legality.

        Returns ``(sown_boards, last_pit, stones)`` where ``last_pit`` is
        the pit receiving the final stone (undefined where ``stones == 0``).
        """
        boards = np.asarray(boards, dtype=np.int16)
        pits = np.asarray(pits, dtype=np.int64)
        rows = np.arange(boards.shape[0])
        stones = boards[rows, pits].astype(np.int64)
        q, r = np.divmod(stones, N_PITS - 1)
        delta = self._delta[pits]  # (N, 12): distance of each pit after origin
        inc = q[:, None] + ((delta >= 1) & (delta <= r[:, None]))
        inc[delta == 0] = 0  # the origin pit is skipped on every lap
        sown = boards + inc.astype(np.int16)
        sown[rows, pits] = 0
        last_delta = np.where(r > 0, r, N_PITS - 1)
        last_pit = (pits + last_delta) % N_PITS
        return sown, last_pit, stones

    # -------------------------------------------------------------- moves

    def apply_move(self, boards: np.ndarray, pits: np.ndarray) -> MoveOutcome:
        """Apply move slot ``pits`` (0..5) to each board in the batch.

        Handles sowing, capture chains, the grand-slam variant and the
        feeding rule.  Successors are returned side-swapped so that the
        new mover again owns pits 0-5.
        """
        boards = np.asarray(boards, dtype=np.int16)
        if boards.ndim != 2 or boards.shape[1] != N_PITS:
            raise ValueError(f"boards must be (N, {N_PITS}), got {boards.shape}")
        pits = np.broadcast_to(np.asarray(pits, dtype=np.int64), boards.shape[:1]).copy()
        if pits.size and ((pits < 0) | (pits >= N_MOVE_SLOTS)).any():
            raise ValueError("move pits must be in 0..5")
        n = boards.shape[0]
        rows = np.arange(n)

        sown, last_pit, stones = self.sow(boards, pits)
        legal = stones > 0

        # Feeding rule: when the opponent side is empty the move must reach it.
        if self.rules.must_feed:
            opp_empty = boards[:, _OPP].sum(axis=1) == 0
            feeds = sown[:, _OPP].sum(axis=1) > 0
            # Only restrict when *some* legal feeding move exists; the caller
            # (legal_moves) handles the "no feeding move at all" terminal case
            # by consulting has_any_feeding_move first.
            legal &= ~opp_empty | feeds

        # Capture chain: walk backwards from last_pit through opponent pits
        # holding 2 or 3 stones.  At most 6 steps.
        chain = np.zeros((n, N_PITS), dtype=bool)
        cur = last_pit.copy()
        active = legal & (cur >= 6)
        for _ in range(6):
            cnt = sown[rows, cur]
            active = active & ((cnt == 2) | (cnt == 3))
            if not active.any():
                break
            chain[rows[active], cur[active]] = True
            cur = cur - 1
            active = active & (cur >= 6)

        cap = np.where(chain, sown, 0).sum(axis=1).astype(np.int64)
        opp_total = sown[:, _OPP].sum(axis=1)
        slam = legal & (cap > 0) & (cap == opp_total)

        if self.rules.grand_slam is GrandSlam.CAPTURE_NOTHING:
            chain[slam] = False
            cap[slam] = 0
        elif self.rules.grand_slam is GrandSlam.FORBIDDEN:
            legal &= ~slam
        # GrandSlam.ALLOWED: keep the capture as computed.

        result = np.where(chain, 0, sown)
        return MoveOutcome(legal=legal, captured=cap, boards=_swap_sides(result))

    def legal_moves(self, boards: np.ndarray) -> np.ndarray:
        """Return an ``(N, 6)`` legality mask for every move slot."""
        boards = np.asarray(boards, dtype=np.int16)
        masks = [
            self.apply_move(boards, np.full(boards.shape[0], p)).legal
            for p in range(N_MOVE_SLOTS)
        ]
        mask = np.stack(masks, axis=1)
        if self.rules.must_feed:
            # If the opponent is starved and no move feeds, the position is
            # terminal; apply_move already removed non-feeding moves, so the
            # row is all-False there, which is exactly the terminal signal.
            pass
        return mask

    # ------------------------------------------------------------ terminal

    def terminal_values(self, boards: np.ndarray):
        """Evaluate the end-of-game rule for a batch.

        Returns ``(is_terminal, value)``; ``value`` (mover's perspective)
        is meaningful only where ``is_terminal``.  A position is terminal
        when no legal move exists; the remaining stones then go to the
        owner of the side they sit on.
        """
        boards = np.asarray(boards, dtype=np.int16)
        legal = self.legal_moves(boards)
        is_terminal = ~legal.any(axis=1)
        value = (
            boards[:, _MOVER].sum(axis=1) - boards[:, _OPP].sum(axis=1)
        ).astype(np.int64)
        return is_terminal, value

    # -------------------------------------------------------------- unmove

    def noncapture_predecessors(self, boards: np.ndarray, max_stones: int):
        """Generate the non-capturing predecessors of each board.

        ``boards`` is an ``(N, 12)`` batch of positions (mover = pits 0-5)
        in the ``max_stones``-stone space.  A *predecessor* is a position
        with the same stone count from which one legal, non-capturing move
        produces the board.

        Candidate predecessors are enumerated by un-sowing (the origin pit
        of the move must be empty in the unswapped child) and each one is
        verified by forward application, so the result is exact by
        construction.

        Returns ``(child_row, pred_boards)`` where ``pred_boards[k]`` is a
        predecessor of ``boards[child_row[k]]``.
        """
        boards = np.asarray(boards, dtype=np.int16)
        n = boards.shape[0]
        if n == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros((0, N_PITS), dtype=np.int16),
            )
        # Undo the side swap: view the child from the previous mover's side.
        pre = _swap_sides(boards)
        out_rows, out_boards = [], []
        for pit in range(N_MOVE_SLOTS):
            # The origin pit receives nothing and is emptied, and a
            # non-capturing move leaves opponent pits untouched, so the
            # origin must be empty in the unswapped child.
            cand = np.flatnonzero(pre[:, pit] == 0)
            if cand.size == 0:
                continue
            base = pre[cand]
            for s in range(1, max_stones + 1):
                q, r = divmod(s, N_PITS - 1)
                delta = self._delta[pit]
                inc = (q + ((delta >= 1) & (delta <= r))).astype(np.int16)
                parent = base - inc[None, :]
                parent[:, pit] = s
                ok = (parent >= 0).all(axis=1)
                if not ok.any():
                    continue
                rows = cand[ok]
                pboards = parent[ok]
                # Forward verification: the move must be legal, capture
                # nothing, and reproduce the child exactly.
                outcome = self.apply_move(pboards, np.full(rows.size, pit))
                good = (
                    outcome.legal
                    & (outcome.captured == 0)
                    & (outcome.boards == boards[rows]).all(axis=1)
                )
                if good.any():
                    out_rows.append(rows[good])
                    out_boards.append(pboards[good])
        if not out_rows:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros((0, N_PITS), dtype=np.int16),
            )
        return np.concatenate(out_rows), np.concatenate(out_boards, axis=0)

    # ------------------------------------------------------------- helpers

    def board_to_string(self, board: np.ndarray) -> str:
        """Human-readable two-row rendering (opponent row reversed)."""
        board = np.asarray(board).ravel()
        opp = " ".join(f"{int(v):2d}" for v in board[11:5:-1])
        mov = " ".join(f"{int(v):2d}" for v in board[:6])
        return f"opp  [{opp}]\nmove [{mov}]"

    def random_boards(self, n_stones: int, count: int, rng) -> np.ndarray:
        """Sample ``count`` uniform n-stone boards (by uniform index)."""
        indexer = self.indexer(n_stones)
        idx = rng.integers(0, indexer.count, size=count)
        return indexer.unrank(idx)
