"""Seeded random capture games for property-based testing.

A :class:`SyntheticCaptureGame` is a randomly generated stratified game:
a handful of databases of random sizes, each position getting a random
mix of internal moves (within its database, cycles welcome), capturing
moves (into lower databases with the capture amount equal to the
database-id difference) and terminal labels.  The structure is arbitrary
— which is the point: the solvers must agree with the dense oracle and
with each other on games with *no* helpful regularity at all.

Database ids are consecutive integers ``0..levels-1``; ``value_bound``
of database ``d`` is ``d`` (as if the id were a stone count).
"""

from __future__ import annotations

import numpy as np

from .base import CaptureGame, ChunkScan

__all__ = ["SyntheticCaptureGame"]


class SyntheticCaptureGame(CaptureGame):
    """A random stratified capture game (fully materialized, test-scale)."""

    def __init__(
        self,
        levels: int = 4,
        max_size: int = 60,
        max_moves: int = 4,
        terminal_frac: float = 0.15,
        internal_frac: float = 0.6,
        seed: int = 0,
    ):
        if levels < 1:
            raise ValueError("need at least one level")
        rng = np.random.default_rng(seed)
        self.name = f"synthetic-{levels}x{max_size}-{seed}"
        self.levels = levels
        self._sizes = [int(rng.integers(1, max_size + 1)) for _ in range(levels)]
        self._scans: dict[int, ChunkScan] = {}
        self._preds: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for d in range(levels):
            self._scans[d] = self._generate(d, rng, max_moves, terminal_frac,
                                            internal_frac)
            self._preds[d] = self._transpose(d)

    # ---------------------------------------------------------- generation

    def _generate(self, d, rng, max_moves, terminal_frac, internal_frac):
        size = self._sizes[d]
        slots = max_moves
        legal = np.zeros((size, slots), dtype=bool)
        capture = np.zeros((size, slots), dtype=np.int64)
        succ = np.zeros((size, slots), dtype=np.int64)
        terminal = rng.random(size) < terminal_frac
        bound = d
        terminal_value = rng.integers(-bound, bound + 1, size=size)
        for p in range(size):
            if terminal[p]:
                continue
            deg = int(rng.integers(1, slots + 1))
            for s in range(deg):
                legal[p, s] = True
                if d > 0 and rng.random() > internal_frac:
                    target = int(rng.integers(0, d))
                    capture[p, s] = d - target
                    succ[p, s] = int(rng.integers(0, self._sizes[target]))
                else:
                    capture[p, s] = 0
                    succ[p, s] = int(rng.integers(0, size))
        # Positions that ended up with no legal move become terminal.
        fallthrough = ~terminal & ~legal.any(axis=1)
        terminal |= fallthrough
        return ChunkScan(
            start=0,
            terminal=terminal,
            terminal_value=terminal_value.astype(np.int64),
            legal=legal,
            capture=capture,
            succ_index=succ,
        )

    def _transpose(self, d):
        scan = self._scans[d]
        internal = scan.legal & (scan.capture == 0)
        src, _ = np.nonzero(internal)
        dst = scan.succ_index[internal]
        return dst, src  # child -> parent pairs

    # ------------------------------------------------------------ protocol

    def db_sequence(self, target):
        return list(range(int(target) + 1))

    def db_size(self, db_id) -> int:
        return self._sizes[db_id]

    def value_bound(self, db_id) -> int:
        return int(db_id)

    def exit_db(self, db_id, capture: int):
        target = db_id - capture
        if not (0 <= target < db_id):
            raise ValueError(f"invalid capture {capture} from level {db_id}")
        return target

    def scan_chunk(self, db_id, start: int, stop: int) -> ChunkScan:
        scan = self._scans[db_id]
        return ChunkScan(
            start=start,
            terminal=scan.terminal[start:stop].copy(),
            terminal_value=scan.terminal_value[start:stop].copy(),
            legal=scan.legal[start:stop].copy(),
            capture=scan.capture[start:stop].copy(),
            succ_index=scan.succ_index[start:stop].copy(),
        )

    def predecessors_internal(self, db_id, indices: np.ndarray):
        children, parents = self._preds[db_id]
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        # For each queried child, emit its parent edges (with multiplicity).
        out_rows, out_parents = [], []
        order = np.argsort(children, kind="stable")
        sorted_children = children[order]
        for k, child in enumerate(idx):
            left = np.searchsorted(sorted_children, child, side="left")
            right = np.searchsorted(sorted_children, child, side="right")
            if right > left:
                out_rows.append(np.full(right - left, k, dtype=np.int64))
                out_parents.append(parents[order[left:right]])
        if not out_rows:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        return np.concatenate(out_rows), np.concatenate(out_parents)
