"""Game substrates for retrograde analysis."""

from .awari import AwariGame, AwariRules, GrandSlam, MoveOutcome
from .awari_db import AwariCaptureGame
from .awari_index import AwariIndexer, binomial_table
from .base import CaptureGame, ChunkScan, WDLGame, WDLScan
from .kalah import KalahCaptureGame, KalahGame
from .krk import KRKGame
from .loopy import LoopyGraphGame, random_loopy_game
from .nim import NimGame
from .synthetic import SyntheticCaptureGame

__all__ = [
    "AwariGame",
    "AwariRules",
    "GrandSlam",
    "MoveOutcome",
    "AwariCaptureGame",
    "AwariIndexer",
    "binomial_table",
    "CaptureGame",
    "ChunkScan",
    "WDLGame",
    "WDLScan",
    "KalahGame",
    "KalahCaptureGame",
    "KRKGame",
    "LoopyGraphGame",
    "random_loopy_game",
    "NimGame",
    "SyntheticCaptureGame",
]
