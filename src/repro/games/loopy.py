"""Explicit-graph games with cycles, for exercising draw detection.

Retrograde analysis is only interesting when the move graph has cycles:
positions on a cycle that neither side can profitably leave are *draws*
and must survive the least-fixpoint win/loss propagation unresolved.
:class:`LoopyGraphGame` wraps an arbitrary directed graph (with terminal
positions marked won or lost for the mover) as a
:class:`~repro.games.base.WDLGame`, so tests can construct adversarial
topologies — self-contained cycles, cycles with escape hatches, long
corridors — with hand-computable values.

:func:`random_loopy_game` generates seeded random graphs used by the
property-based tests (solver vs. the dense oracle).
"""

from __future__ import annotations

import numpy as np

from .base import WDLGame, WDLScan

__all__ = ["LoopyGraphGame", "random_loopy_game"]


class LoopyGraphGame(WDLGame):
    """A WDL game given by an explicit adjacency list.

    Parameters
    ----------
    successors:
        ``successors[i]`` is the list of positions reachable from ``i``.
        Positions with an empty list are terminal.
    terminal_win:
        Optional bool array: terminal positions where the *mover* has won
        (default: a terminal position is lost for the mover, as in
        normal-play convention).
    """

    def __init__(self, successors, terminal_win=None, name: str = "loopy"):
        self.name = name
        self._succ = [np.asarray(s, dtype=np.int64) for s in successors]
        n = len(self._succ)
        for i, s in enumerate(self._succ):
            if s.size and (s.min() < 0 or s.max() >= n):
                raise ValueError(f"successor of {i} out of range")
        if terminal_win is None:
            terminal_win = np.zeros(n, dtype=bool)
        self._terminal_win = np.asarray(terminal_win, dtype=bool)
        if self._terminal_win.shape != (n,):
            raise ValueError("terminal_win must have one entry per position")
        self._max_deg = max((s.size for s in self._succ), default=0)
        # Predecessor lists, built once (the graph is explicit anyway).
        preds: list[list[int]] = [[] for _ in range(n)]
        for i, s in enumerate(self._succ):
            for j in s:
                preds[int(j)].append(i)
        self._pred = [np.asarray(p, dtype=np.int64) for p in preds]

    @property
    def size(self) -> int:
        return len(self._succ)

    def scan_chunk(self, start: int, stop: int) -> WDLScan:
        n = stop - start
        slots = max(self._max_deg, 1)
        legal = np.zeros((n, slots), dtype=bool)
        succ = np.zeros((n, slots), dtype=np.int64)
        for k in range(n):
            s = self._succ[start + k]
            legal[k, : s.size] = True
            succ[k, : s.size] = s
        terminal = ~legal.any(axis=1)
        return WDLScan(
            start=start,
            terminal=terminal,
            terminal_win=self._terminal_win[start:stop].copy(),
            legal=legal,
            succ_index=succ,
        )

    def predecessors(self, indices: np.ndarray):
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        rows, parents = [], []
        for k, i in enumerate(idx):
            p = self._pred[int(i)]
            if p.size:
                rows.append(np.full(p.size, k, dtype=np.int64))
                parents.append(p)
        if not rows:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        return np.concatenate(rows), np.concatenate(parents)


def random_loopy_game(
    n: int,
    avg_degree: float = 2.0,
    terminal_frac: float = 0.15,
    win_frac: float = 0.5,
    seed: int = 0,
) -> LoopyGraphGame:
    """Seeded random graph game with cycles and mixed terminal labels.

    A ``terminal_frac`` fraction of positions get no moves; of those, a
    ``win_frac`` fraction are mover-wins.  The remaining positions get a
    Poisson-ish number of random successors, which yields plenty of cycles
    at ``avg_degree >= 1``.
    """
    rng = np.random.default_rng(seed)
    terminal = rng.random(n) < terminal_frac
    if not terminal.any():
        terminal[rng.integers(0, n)] = True
    twin = terminal & (rng.random(n) < win_frac)
    successors = []
    for i in range(n):
        if terminal[i]:
            successors.append([])
            continue
        deg = 1 + rng.poisson(max(avg_degree - 1.0, 0.0))
        successors.append(rng.integers(0, n, size=deg).tolist())
    return LoopyGraphGame(successors, terminal_win=twin, name=f"loopy-{n}-{seed}")
