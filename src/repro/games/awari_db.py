"""Awari wired into the :class:`~repro.games.base.CaptureGame` protocol.

Database ids are stone counts.  The n-stone database depends on every
smaller database that a capture can reach (captures take at least 2
stones, so databases n-2, n-3, ..., 0 — never n-1).
"""

from __future__ import annotations

import numpy as np

from .awari import N_MOVE_SLOTS, AwariGame, AwariRules
from .base import CaptureGame, ChunkScan

__all__ = ["AwariCaptureGame"]


class AwariCaptureGame(CaptureGame):
    """Batch scan/unmove interface over :class:`AwariGame`."""

    def __init__(self, rules: AwariRules | None = None):
        self.engine = AwariGame(rules)
        self.name = "awari"

    @property
    def rules(self) -> AwariRules:
        return self.engine.rules

    # ---------------------------------------------------------- structure

    def db_sequence(self, target: int):
        if target < 0:
            raise ValueError("stone count must be >= 0")
        return list(range(target + 1))

    def db_size(self, db_id: int) -> int:
        return self.engine.indexer(db_id).count

    def value_bound(self, db_id: int) -> int:
        return int(db_id)

    def exit_db(self, db_id: int, capture: int) -> int:
        if capture <= 0 or capture > db_id:
            raise ValueError(f"invalid capture {capture} from {db_id}-stone db")
        return db_id - capture

    # --------------------------------------------------------------- scan

    def scan_chunk(self, db_id: int, start: int, stop: int) -> ChunkScan:
        indexer = self.engine.indexer(db_id)
        if not (0 <= start <= stop <= indexer.count):
            raise ValueError(f"bad chunk [{start}, {stop}) for db {db_id}")
        return self.scan_positions(
            db_id, np.arange(start, stop, dtype=np.int64), start=start
        )

    def scan_positions(
        self, db_id: int, idx: np.ndarray, start: int = -1
    ) -> ChunkScan:
        """Scan an arbitrary batch of position indices (used by workers
        owning non-contiguous partitions)."""
        indexer = self.engine.indexer(db_id)
        idx = np.asarray(idx, dtype=np.int64)
        boards = indexer.unrank(idx)
        n = idx.shape[0]
        legal = np.zeros((n, N_MOVE_SLOTS), dtype=bool)
        capture = np.zeros((n, N_MOVE_SLOTS), dtype=np.int64)
        succ = np.zeros((n, N_MOVE_SLOTS), dtype=np.int64)
        for pit in range(N_MOVE_SLOTS):
            outcome = self.engine.apply_move(boards, np.full(n, pit))
            legal[:, pit] = outcome.legal
            ok = outcome.legal
            if not ok.any():
                continue
            caps = outcome.captured[ok]
            capture[ok, pit] = caps
            sub = outcome.boards[ok]
            # Rank successors per destination database (n - captured).
            col = np.zeros(ok.sum(), dtype=np.int64)
            for c in np.unique(caps):
                m = caps == c
                col[m] = self.engine.indexer(db_id - int(c)).rank(sub[m])
            succ[ok, pit] = col
        # Mover's remaining stones minus the opponent's: the starvation rule.
        mover = boards[:, :6].sum(axis=1).astype(np.int64)
        terminal = ~legal.any(axis=1)
        terminal_value = mover - (db_id - mover)
        return ChunkScan(
            start=start,
            terminal=terminal,
            terminal_value=terminal_value,
            legal=legal,
            capture=capture,
            succ_index=succ,
        )

    # ------------------------------------------------------- predecessors

    def predecessors_internal(self, db_id: int, indices: np.ndarray):
        indexer = self.engine.indexer(db_id)
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        boards = indexer.unrank(idx)
        child_row, pred_boards = self.engine.noncapture_predecessors(
            boards, max_stones=db_id
        )
        if child_row.size == 0:
            return child_row, np.zeros(0, dtype=np.int64)
        return child_row, indexer.rank(pred_boards)
