"""Game protocols consumed by the retrograde-analysis solvers.

Two families of games are supported, mirroring the applications of
retrograde analysis discussed in the paper:

* :class:`CaptureGame` — games whose endgame value is an integer *capture
  difference* (awari).  The state space is stratified into databases
  (awari: one per stone count); capturing moves are *exits* into smaller,
  already-solved databases while non-capturing moves stay inside the
  current database and may form cycles.

* :class:`WDLGame` — games solved for win/loss/draw (plus
  distance-to-win), the classic retrograde-analysis setting (chess
  endgames, nine men's morris, ...).  A single position space with
  internal moves and terminal positions.

Both protocols are *batch oriented*: every method maps arrays to arrays,
which is what makes a pure-Python implementation of million-position
databases viable (see the HPC guides bundled with this repository).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["ChunkScan", "CaptureGame", "WDLScan", "WDLGame"]


@dataclass
class ChunkScan:
    """Move scan for a contiguous chunk of one capture-game database.

    Attributes
    ----------
    start:
        Index of the first position in the chunk.
    terminal:
        ``(C,)`` bool — positions with no legal move.
    terminal_value:
        ``(C,)`` int — game value where ``terminal`` (undefined elsewhere).
    legal:
        ``(C, S)`` bool — legality of each move slot.
    capture:
        ``(C, S)`` int — stones captured; 0 marks an internal edge.
    succ_index:
        ``(C, S)`` int64 — successor index, valid where ``legal``.  For a
        capturing move this indexes the smaller database identified by the
        game's dependency rule; for an internal move it indexes the current
        database.
    """

    start: int
    terminal: np.ndarray
    terminal_value: np.ndarray
    legal: np.ndarray
    capture: np.ndarray
    succ_index: np.ndarray

    @property
    def size(self) -> int:
        return int(self.terminal.shape[0])


class CaptureGame(abc.ABC):
    """A stratified game solved for integer capture-difference values."""

    name: str = "capture-game"

    @abc.abstractmethod
    def db_sequence(self, target) -> Sequence:
        """Database ids required to solve ``target``, dependencies first."""

    @abc.abstractmethod
    def db_size(self, db_id) -> int:
        """Number of positions in database ``db_id``."""

    @abc.abstractmethod
    def value_bound(self, db_id) -> int:
        """Largest achievable ``|value|`` inside database ``db_id``."""

    @abc.abstractmethod
    def exit_db(self, db_id, capture: int):
        """Database id reached from ``db_id`` by capturing ``capture``."""

    @abc.abstractmethod
    def scan_chunk(self, db_id, start: int, stop: int) -> ChunkScan:
        """Scan moves for positions ``start <= i < stop`` of ``db_id``."""

    @abc.abstractmethod
    def predecessors_internal(self, db_id, indices: np.ndarray):
        """On-the-fly unmove generation for internal (non-capturing) edges.

        Returns ``(child_row, parent_index)`` pairs: for each ``k``,
        position ``parent_index[k]`` has a legal non-capturing move into
        position ``indices[child_row[k]]``.  This is the faithful
        formulation used by the paper's distributed workers (no stored
        transposed graph); the graph-based solvers use a precomputed
        reverse adjacency instead and the two are cross-checked in tests.
        """


@dataclass
class WDLScan:
    """Move scan for a chunk of a win/loss/draw game.

    ``terminal_win`` is from the *mover's* perspective: ``True`` means the
    mover has already won (rarely used — most games mark the mover as lost
    when no move exists, e.g. normal-play nim).  ``terminal_draw`` marks
    terminal positions that are drawn for both sides (chess stalemate,
    dead positions); when ``None`` no terminal draws exist.
    """

    start: int
    terminal: np.ndarray
    terminal_win: np.ndarray
    legal: np.ndarray
    succ_index: np.ndarray
    terminal_draw: np.ndarray | None = None

    @property
    def size(self) -> int:
        return int(self.terminal.shape[0])


class WDLGame(abc.ABC):
    """A single-space game solved for win/loss/draw."""

    name: str = "wdl-game"

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of positions."""

    @abc.abstractmethod
    def scan_chunk(self, start: int, stop: int) -> WDLScan:
        """Scan moves for positions ``start <= i < stop``."""

    @abc.abstractmethod
    def predecessors(self, indices: np.ndarray):
        """Unmove generation, same contract as
        :meth:`CaptureGame.predecessors_internal`."""
