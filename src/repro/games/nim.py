"""Nim as a :class:`~repro.games.base.WDLGame` substrate.

Normal-play nim with ``k`` heaps of at most ``cap`` stones.  A move removes
one or more stones from a single heap; the player unable to move (all
heaps empty) loses.  The Sprague–Grundy theorem gives a closed-form
oracle — a position is a win for the mover iff the xor of the heap sizes
is non-zero — which makes nim the primary correctness anchor for the
win/loss/draw retrograde-analysis solver.

Positions are indexed in mixed radix: ``index = sum_i h_i * (cap+1)**i``.
"""

from __future__ import annotations

import numpy as np

from .base import WDLGame, WDLScan

__all__ = ["NimGame"]


class NimGame(WDLGame):
    """Normal-play nim with fixed heap count and heap capacity."""

    def __init__(self, heaps: int = 3, cap: int = 7):
        if heaps < 1 or cap < 1:
            raise ValueError("heaps and cap must be >= 1")
        self.heaps = int(heaps)
        self.cap = int(cap)
        self.name = f"nim-{heaps}x{cap}"
        self._radix = self.cap + 1
        self._size = self._radix**self.heaps
        self._weights = self._radix ** np.arange(self.heaps, dtype=np.int64)

    # ------------------------------------------------------------ indexing

    @property
    def size(self) -> int:
        return self._size

    def encode(self, heaps: np.ndarray) -> np.ndarray:
        """Heap vectors ``(N, heaps)`` -> indices ``(N,)``."""
        heaps = np.asarray(heaps, dtype=np.int64)
        squeeze = heaps.ndim == 1
        if squeeze:
            heaps = heaps[None, :]
        if (heaps < 0).any() or (heaps > self.cap).any():
            raise ValueError(f"heap sizes must lie in [0, {self.cap}]")
        idx = heaps @ self._weights
        return idx[0] if squeeze else idx

    def decode(self, indices: np.ndarray) -> np.ndarray:
        """Indices ``(N,)`` -> heap vectors ``(N, heaps)``."""
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        out = np.empty((idx.shape[0], self.heaps), dtype=np.int64)
        rem = idx.copy()
        for i in range(self.heaps):
            rem, out[:, i] = np.divmod(rem, self._radix)
        return out

    # ---------------------------------------------------------------- scan

    def scan_chunk(self, start: int, stop: int) -> WDLScan:
        idx = np.arange(start, stop, dtype=np.int64)
        heaps = self.decode(idx)
        n = idx.shape[0]
        # Move slots: (heap i, take t) for t in 1..cap  -> heaps * cap slots.
        slots = self.heaps * self.cap
        legal = np.zeros((n, slots), dtype=bool)
        succ = np.zeros((n, slots), dtype=np.int64)
        for i in range(self.heaps):
            for t in range(1, self.cap + 1):
                s = i * self.cap + (t - 1)
                ok = heaps[:, i] >= t
                legal[:, s] = ok
                succ[:, s] = idx - t * self._weights[i]
        terminal = ~legal.any(axis=1)
        return WDLScan(
            start=start,
            terminal=terminal,
            terminal_win=np.zeros(n, dtype=bool),  # no move => mover loses
            legal=legal,
            succ_index=succ,
        )

    # --------------------------------------------------------- predecessors

    def predecessors(self, indices: np.ndarray):
        """Parents of each position: add 1..cap stones back to one heap."""
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        heaps = self.decode(idx)
        rows_out, parents_out = [], []
        for i in range(self.heaps):
            for t in range(1, self.cap + 1):
                ok = heaps[:, i] + t <= self.cap
                if ok.any():
                    rows_out.append(np.flatnonzero(ok))
                    parents_out.append(idx[ok] + t * self._weights[i])
        if not rows_out:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        return np.concatenate(rows_out), np.concatenate(parents_out)

    # --------------------------------------------------------------- oracle

    def oracle_win(self, indices: np.ndarray) -> np.ndarray:
        """Sprague–Grundy ground truth: mover wins iff xor of heaps != 0."""
        heaps = self.decode(indices)
        g = np.zeros(heaps.shape[0], dtype=np.int64)
        for i in range(self.heaps):
            g ^= heaps[:, i]
        return g != 0
