"""Combinatorial indexing of awari stone distributions.

An awari endgame database for ``n`` stones enumerates every way of placing
``n`` indistinguishable stones into 12 pits (the player to move always owns
pits 0-5 by convention).  The number of such distributions is
``C(n + 11, 11)``.

This module provides a dense, order-preserving bijection between boards
(length-12 integer vectors summing to ``n``) and indices in
``[0, C(n + 11, 11))`` — the *combinatorial number system* applied to
compositions.  A composition ``(a_0, ..., a_11)`` is mapped to the strictly
increasing divider sequence ``b_j = a_0 + ... + a_j + j`` for ``j = 0..10``
and ranked as ``sum_j C(b_j, j + 1)`` (colexicographic order).

All operations are vectorized over batches of boards, since retrograde
analysis touches millions of positions; see the repository guides on
array-oriented Python.
"""

from __future__ import annotations

import numpy as np

__all__ = ["binomial_table", "AwariIndexer"]


def binomial_table(max_n: int, max_k: int) -> np.ndarray:
    """Return table ``T`` with ``T[n, k] = C(n, k)`` as int64.

    Exact for every entry that fits in int64; the sizes used here
    (``n <= ~60``) are far below overflow.
    """
    table = np.zeros((max_n + 1, max_k + 1), dtype=np.int64)
    table[:, 0] = 1
    for n in range(1, max_n + 1):
        # Pascal's rule, computed row by row (cheap: done once per indexer).
        table[n, 1:] = table[n - 1, 1:] + table[n - 1, : max_k]
    return table


class AwariIndexer:
    """Bijection between n-stone boards and dense indices.

    Parameters
    ----------
    n_stones:
        Total number of stones on the board (the database identifier).
    n_pits:
        Number of pits; 12 for awari.  Exposed for testing with smaller
        toy geometries.
    """

    def __init__(self, n_stones: int, n_pits: int = 12):
        if n_stones < 0:
            raise ValueError(f"n_stones must be >= 0, got {n_stones}")
        if n_pits < 1:
            raise ValueError(f"n_pits must be >= 1, got {n_pits}")
        self.n_stones = int(n_stones)
        self.n_pits = int(n_pits)
        self._ndiv = self.n_pits - 1  # number of dividers b_0..b_{ndiv-1}
        self._binom = binomial_table(self.n_stones + self.n_pits, self.n_pits)
        #: Number of positions in the database: C(n + pits - 1, pits - 1).
        self.count = int(self._binom[self.n_stones + self.n_pits - 1, self.n_pits - 1])

    # ------------------------------------------------------------------ rank

    def rank(self, boards: np.ndarray) -> np.ndarray:
        """Map boards ``(N, n_pits)`` (each summing to n_stones) to indices.

        Input validation is deliberately light (hot path); use
        :meth:`validate` in tests and at API boundaries.
        """
        boards = np.asarray(boards)
        squeeze = boards.ndim == 1
        if squeeze:
            boards = boards[None, :]
        if boards.shape[1] != self.n_pits:
            raise ValueError(
                f"expected boards with {self.n_pits} pits, got shape {boards.shape}"
            )
        if self._ndiv == 0:
            out = np.zeros(boards.shape[0], dtype=np.int64)
            return out[0] if squeeze else out
        prefix = np.cumsum(boards[:, : self._ndiv], axis=1, dtype=np.int64)
        dividers = prefix + np.arange(self._ndiv, dtype=np.int64)
        # rank = sum_j C(b_j, j + 1); gather from the precomputed table.
        ks = np.arange(1, self._ndiv + 1, dtype=np.int64)
        ranks = self._binom[dividers, ks].sum(axis=1)
        return ranks[0] if squeeze else ranks

    # ---------------------------------------------------------------- unrank

    def unrank(self, indices: np.ndarray) -> np.ndarray:
        """Map indices ``(N,)`` back to boards ``(N, n_pits)`` (int16)."""
        indices = np.asarray(indices, dtype=np.int64)
        squeeze = indices.ndim == 0
        idx = np.atleast_1d(indices).copy()
        if idx.size and (idx.min() < 0 or idx.max() >= self.count):
            raise ValueError(
                f"index out of range [0, {self.count}) for n={self.n_stones}"
            )
        n = idx.shape[0]
        boards = np.zeros((n, self.n_pits), dtype=np.int16)
        if self._ndiv == 0:
            boards[:, 0] = self.n_stones
            return boards[0] if squeeze else boards
        dividers = np.zeros((n, self._ndiv), dtype=np.int64)
        # Recover dividers from the highest down: b_j is the largest value
        # with C(b_j, j + 1) <= remaining rank.  searchsorted on the (sorted)
        # column C(., j + 1) finds it in O(log table) per element.
        for j in range(self._ndiv - 1, -1, -1):
            col = self._binom[:, j + 1]
            b = np.searchsorted(col, idx, side="right") - 1
            dividers[:, j] = b
            idx -= col[b]
        # a_0 = b_0; a_j = b_j - b_{j-1} - 1; a_last = n - sum(prefix).
        boards[:, 0] = dividers[:, 0]
        boards[:, 1 : self._ndiv] = np.diff(dividers, axis=1) - 1
        boards[:, self._ndiv] = self.n_stones - (
            dividers[:, -1] - (self._ndiv - 1)
        )
        return boards[0] if squeeze else boards

    # ----------------------------------------------------------------- misc

    def all_boards(self, chunk: int | None = None) -> np.ndarray:
        """Materialize every board in index order, shape ``(count, n_pits)``.

        For large databases prefer :meth:`iter_chunks`.
        """
        return self.unrank(np.arange(self.count, dtype=np.int64))

    def iter_chunks(self, chunk: int = 1 << 16):
        """Yield ``(start, boards)`` tuples covering the whole index space."""
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        for start in range(0, self.count, chunk):
            stop = min(start + chunk, self.count)
            yield start, self.unrank(np.arange(start, stop, dtype=np.int64))

    def validate(self, boards: np.ndarray) -> None:
        """Raise ``ValueError`` unless every row is a valid n-stone board."""
        boards = np.atleast_2d(np.asarray(boards))
        if boards.shape[1] != self.n_pits:
            raise ValueError(f"boards must have {self.n_pits} pits")
        if (boards < 0).any():
            raise ValueError("negative pit counts")
        sums = boards.sum(axis=1)
        if (sums != self.n_stones).any():
            bad = int(np.flatnonzero(sums != self.n_stones)[0])
            raise ValueError(
                f"board {bad} sums to {int(sums[bad])}, expected {self.n_stones}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AwariIndexer(n_stones={self.n_stones}, n_pits={self.n_pits}, "
            f"count={self.count})"
        )
